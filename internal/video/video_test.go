package video

import (
	"math/rand"
	"testing"

	"traxtents/internal/device"
	"traxtents/internal/device/stack"
	"traxtents/internal/stats"
)

func testServer(t *testing.T, rounds int) *Server {
	t.Helper()
	s, err := New(Config{Rounds: rounds, Seed: 9})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestRoundTimeGrowsWithStreams(t *testing.T) {
	s := testServer(t, 60)
	ts := s.TrackSectors()
	q10, err := s.RoundTimeQ(10, ts, true)
	if err != nil {
		t.Fatalf("RoundTimeQ: %v", err)
	}
	q40, err := s.RoundTimeQ(40, ts, true)
	if err != nil {
		t.Fatalf("RoundTimeQ: %v", err)
	}
	if q40 <= q10 {
		t.Fatalf("round time should grow with streams: %g vs %g", q10, q40)
	}
}

// TestAlignedAdmitsMoreSoft: the headline §5.4.1 result — at a
// track-sized I/O per round, aligned access supports substantially more
// streams per disk (paper: 70 vs 45, +56%).
func TestAlignedAdmitsMoreSoft(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo in -short mode")
	}
	s := testServer(t, 300)
	ts := s.TrackSectors()
	al, err := s.MaxStreamsSoft(ts, true, 90)
	if err != nil {
		t.Fatalf("MaxStreamsSoft: %v", err)
	}
	un, err := s.MaxStreamsSoft(ts, false, 90)
	if err != nil {
		t.Fatalf("MaxStreamsSoft: %v", err)
	}
	if al <= un {
		t.Fatalf("aligned %d streams should beat unaligned %d", al, un)
	}
	gain := float64(al)/float64(un) - 1
	if gain < 0.25 {
		t.Fatalf("aligned gain %.0f%%, paper reports 56%%", gain*100)
	}
	t.Logf("streams/disk: aligned %d, unaligned %d (+%.0f%%)", al, un, gain*100)
}

// TestHardRealTime reproduces §5.4.2: 264 KB I/Os admit about 67 aligned
// vs 36 unaligned streams (83%% vs 45%% efficiency); 528 KB I/Os about
// 75 vs 52.
func TestHardRealTime(t *testing.T) {
	s := testServer(t, 10)
	ts := s.TrackSectors() // 264 KB
	alV, alEff, err := s.HardRealTime(ts, true)
	if err != nil {
		t.Fatalf("HardRealTime: %v", err)
	}
	unV, unEff, err := s.HardRealTime(ts, false)
	if err != nil {
		t.Fatalf("HardRealTime: %v", err)
	}
	t.Logf("264KB: aligned %d (%.0f%%), unaligned %d (%.0f%%)", alV, alEff*100, unV, unEff*100)
	if alV < 55 || alV > 75 {
		t.Errorf("aligned streams %d, paper reports 67", alV)
	}
	if unV < 30 || unV > 42 {
		t.Errorf("unaligned streams %d, paper reports 36", unV)
	}
	if alEff < 0.7 || unEff > 0.55 {
		t.Errorf("efficiencies %.2f/%.2f, paper reports 0.83/0.45", alEff, unEff)
	}

	al2, _, err := s.HardRealTime(2*ts, true)
	if err != nil {
		t.Fatalf("HardRealTime: %v", err)
	}
	un2, _, err := s.HardRealTime(2*ts, false)
	if err != nil {
		t.Fatalf("HardRealTime: %v", err)
	}
	t.Logf("528KB: aligned %d, unaligned %d", al2, un2)
	if al2 <= alV || un2 <= unV {
		t.Error("doubling the I/O size should admit more streams")
	}
	if un2 >= al2 {
		t.Error("aligned should still lead at 528 KB")
	}
}

// TestStartupLatencyLowerAligned (Figure 9): at a stream count only the
// aligned system reaches with track-sized I/Os, the unaligned system
// needs larger I/Os and so a higher startup latency.
func TestStartupLatencyLowerAligned(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo in -short mode")
	}
	s := testServer(t, 200)
	ts := s.TrackSectors()
	const v = 55
	latAl, ioAl, okAl, err := s.StartupLatency(v, true, 20*ts)
	if err != nil {
		t.Fatalf("StartupLatency: %v", err)
	}
	latUn, ioUn, okUn, err := s.StartupLatency(v, false, 20*ts)
	if err != nil {
		t.Fatalf("StartupLatency: %v", err)
	}
	if !okAl {
		t.Fatal("aligned system cannot support 55 streams at all")
	}
	if okUn && latUn <= latAl {
		t.Fatalf("unaligned latency %.0f ms (io %d) should exceed aligned %.0f ms (io %d)",
			latUn, ioUn, latAl, ioAl)
	}
	t.Logf("55 streams: aligned %.1f s (io %d sectors), unaligned %.1f s (io %d)",
		latAl/1000, ioAl, latUn/1000, ioUn)
}

// bareRoundTimeQ replicates the pre-stack round loop on the bare
// device: every round's requests served sequentially at the round
// start, sorted by LBN — the exact algorithm RoundTimeQ used before it
// was wired through the host stack.
func bareRoundTimeQ(t *testing.T, s *Server, v, ioSectors int, aligned bool) float64 {
	t.Helper()
	d, err := s.cfg.NewDevice()
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	zFirst, zLast, starts, err := s.region(ioSectors, aligned)
	if err != nil {
		t.Fatalf("region: %v", err)
	}
	span := zLast - zFirst + 1 - int64(ioSectors)
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(v)*7 + int64(ioSectors)))
	times := make([]float64, 0, s.cfg.Rounds)
	for r := 0; r < s.cfg.Rounds; r++ {
		lbns := make([]int64, 0, v)
		for i := 0; i < v; i++ {
			if aligned {
				lbn := starts[rng.Intn(len(starts))]
				if lbn+int64(ioSectors) > zLast+1 {
					i--
					continue
				}
				lbns = append(lbns, lbn)
			} else {
				lbns = append(lbns, zFirst+rng.Int63n(span))
			}
		}
		sortInt64(lbns)
		start := d.Now()
		var last float64
		for _, lbn := range lbns {
			res, err := d.Serve(start, device.Request{LBN: lbn, Sectors: ioSectors})
			if err != nil {
				t.Fatalf("Serve: %v", err)
			}
			if res.Done > last {
				last = res.Done
			}
		}
		times = append(times, last-start)
	}
	return stats.Percentile(times, s.cfg.DeadlineQ*100)
}

// TestPassthroughStackBitIdentical is the PR's differential pin: a
// server whose stack is the zero-value passthrough (depth-1 FCFS
// queue, zero-budget cache) must measure exactly the same round-time
// quantiles as the pre-stack bare-device loop — for aligned and
// unaligned rounds alike. This is what lets the video server route
// through the stack unconditionally.
func TestPassthroughStackBitIdentical(t *testing.T) {
	s := testServer(t, 40)
	if !s.Config().Stack.Passthrough() {
		t.Fatal("zero-config server must run the passthrough stack")
	}
	ts := s.TrackSectors()
	for _, aligned := range []bool{true, false} {
		for _, v := range []int{5, 25} {
			got, err := s.RoundTimeQ(v, ts, aligned)
			if err != nil {
				t.Fatalf("RoundTimeQ: %v", err)
			}
			want := bareRoundTimeQ(t, s, v, ts, aligned)
			if got != want {
				t.Fatalf("v=%d aligned=%v: stack path drifted from bare device: %g vs %g",
					v, aligned, got, want)
			}
		}
	}
}

// TestMeasureRoundsDeterministic: two identical servers measure
// bit-identical metrics — including the mixed-workload background
// responses and the cache hit rate.
func TestMeasureRoundsDeterministic(t *testing.T) {
	mk := func() RoundMetrics {
		s, err := New(Config{
			Rounds: 20, Seed: 5, HotSetTracks: 8,
			Stack:      stack.Config{Depth: 4, Scheduler: "clook", CacheMB: 2},
			Background: Background{RatePerSec: 50},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m, err := s.MeasureRounds(10, s.TrackSectors(), true)
		if err != nil {
			t.Fatalf("MeasureRounds: %v", err)
		}
		return m
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("measurement not deterministic:\n%+v\n%+v", a, b)
	}
	if a.BgRequests == 0 || a.BgMeanMs <= 0 {
		t.Fatalf("background load did not run: %+v", a)
	}
	if a.CacheHitRate <= 0 {
		t.Fatalf("warm hot set yielded no cache hits: %+v", a)
	}
}

// TestHotSetCacheSustainsMoreStreams: with the popular content bounded
// to a host-cacheable hot set, adding a cache budget shortens the
// round-time quantile — the application-level payoff of the host
// stack.
func TestHotSetCacheSustainsMoreStreams(t *testing.T) {
	mk := func(mb float64) *Server {
		s, err := New(Config{Rounds: 30, Seed: 5, HotSetTracks: 8,
			Stack: stack.Config{CacheMB: mb}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	cold, warm := mk(0), mk(4)
	ts := cold.TrackSectors()
	qCold, err := cold.RoundTimeQ(20, ts, true)
	if err != nil {
		t.Fatalf("RoundTimeQ: %v", err)
	}
	qWarm, err := warm.RoundTimeQ(20, ts, true)
	if err != nil {
		t.Fatalf("RoundTimeQ: %v", err)
	}
	if qWarm >= qCold {
		t.Fatalf("host cache did not shorten rounds: %g ms with vs %g ms without", qWarm, qCold)
	}
}

// TestBackgroundSlowsRounds: the mixed workload competes for the
// spindle, so the round quantile with background load must not be
// shorter than without it.
func TestBackgroundSlowsRounds(t *testing.T) {
	mk := func(rate float64) *Server {
		s, err := New(Config{Rounds: 20, Seed: 3,
			Background: Background{RatePerSec: rate}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	quiet, busy := mk(0), mk(200)
	ts := quiet.TrackSectors()
	mQuiet, err := quiet.MeasureRounds(10, ts, true)
	if err != nil {
		t.Fatalf("MeasureRounds: %v", err)
	}
	mBusy, err := busy.MeasureRounds(10, ts, true)
	if err != nil {
		t.Fatalf("MeasureRounds: %v", err)
	}
	if mQuiet.BgRequests != 0 || mBusy.BgRequests == 0 {
		t.Fatalf("background accounting wrong: quiet %d, busy %d", mQuiet.BgRequests, mBusy.BgRequests)
	}
	if mBusy.RoundQMs < mQuiet.RoundQMs {
		t.Fatalf("background load shortened rounds: %g vs %g", mBusy.RoundQMs, mQuiet.RoundQMs)
	}
}

// boundaryOnly hides a device's physical layout, leaving only its
// boundary table — the shape of a real disk behind an array
// controller, which findRegion must approximate with the outermost
// eighth of the table.
type boundaryOnly struct {
	device.Device
}

func (b boundaryOnly) TrackBoundaries() []int64 {
	return b.Device.(device.BoundaryProvider).TrackBoundaries()
}

// TestBoundaryOnlyRegion: a device exposing boundaries but no layout
// still hosts the Monte Carlo.
func TestBoundaryOnlyRegion(t *testing.T) {
	s, err := New(Config{Rounds: 5, Seed: 2, NewDevice: func() (device.Device, error) {
		inner, err := New(Config{Rounds: 1})
		if err != nil {
			return nil, err
		}
		d, err := inner.cfg.NewDevice()
		if err != nil {
			return nil, err
		}
		return boundaryOnly{Device: d}, nil
	}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := s.TrackSectors()
	if ts <= 0 {
		t.Fatal("no track size from the boundary table")
	}
	for _, aligned := range []bool{true, false} {
		q, err := s.RoundTimeQ(4, ts, aligned)
		if err != nil {
			t.Fatalf("RoundTimeQ(aligned=%v): %v", aligned, err)
		}
		if q <= 0 {
			t.Fatalf("degenerate round time %g", q)
		}
	}
}

// TestRegionValidation: oversized I/Os and impossible placements are
// rejected with errors, for both layouts and with a hot set.
func TestRegionValidation(t *testing.T) {
	s := testServer(t, 2)
	if _, err := s.RoundTimeQ(2, 1<<30, true); err == nil {
		t.Fatal("oversized aligned I/O accepted")
	}
	if _, err := s.RoundTimeQ(2, 1<<30, false); err == nil {
		t.Fatal("oversized unaligned I/O accepted")
	}
	hot, err := New(Config{Rounds: 2, Seed: 2, HotSetTracks: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := hot.RoundTimeQ(2, 100*hot.TrackSectors(), false); err == nil {
		t.Fatal("I/O larger than the hot set accepted")
	}
	if _, _, _, err := hot.region(hot.TrackSectors(), true); err != nil {
		t.Fatalf("valid hot-set region rejected: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	s := testServer(t, 1)
	cfg := s.Config()
	if cfg.Disks != 10 || cfg.BitRateMbps != 4 || cfg.DeadlineQ != 0.9999 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if s.Describe() == "" {
		t.Fatal("empty description")
	}
	if _, err := New(Config{Model: "bogus"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}
