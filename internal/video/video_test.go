package video

import "testing"

func testServer(t *testing.T, rounds int) *Server {
	t.Helper()
	s, err := New(Config{Rounds: rounds, Seed: 9})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestRoundTimeGrowsWithStreams(t *testing.T) {
	s := testServer(t, 60)
	ts := s.TrackSectors()
	q10, err := s.RoundTimeQ(10, ts, true)
	if err != nil {
		t.Fatalf("RoundTimeQ: %v", err)
	}
	q40, err := s.RoundTimeQ(40, ts, true)
	if err != nil {
		t.Fatalf("RoundTimeQ: %v", err)
	}
	if q40 <= q10 {
		t.Fatalf("round time should grow with streams: %g vs %g", q10, q40)
	}
}

// TestAlignedAdmitsMoreSoft: the headline §5.4.1 result — at a
// track-sized I/O per round, aligned access supports substantially more
// streams per disk (paper: 70 vs 45, +56%).
func TestAlignedAdmitsMoreSoft(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo in -short mode")
	}
	s := testServer(t, 300)
	ts := s.TrackSectors()
	al, err := s.MaxStreamsSoft(ts, true, 90)
	if err != nil {
		t.Fatalf("MaxStreamsSoft: %v", err)
	}
	un, err := s.MaxStreamsSoft(ts, false, 90)
	if err != nil {
		t.Fatalf("MaxStreamsSoft: %v", err)
	}
	if al <= un {
		t.Fatalf("aligned %d streams should beat unaligned %d", al, un)
	}
	gain := float64(al)/float64(un) - 1
	if gain < 0.25 {
		t.Fatalf("aligned gain %.0f%%, paper reports 56%%", gain*100)
	}
	t.Logf("streams/disk: aligned %d, unaligned %d (+%.0f%%)", al, un, gain*100)
}

// TestHardRealTime reproduces §5.4.2: 264 KB I/Os admit about 67 aligned
// vs 36 unaligned streams (83%% vs 45%% efficiency); 528 KB I/Os about
// 75 vs 52.
func TestHardRealTime(t *testing.T) {
	s := testServer(t, 10)
	ts := s.TrackSectors() // 264 KB
	alV, alEff, err := s.HardRealTime(ts, true)
	if err != nil {
		t.Fatalf("HardRealTime: %v", err)
	}
	unV, unEff, err := s.HardRealTime(ts, false)
	if err != nil {
		t.Fatalf("HardRealTime: %v", err)
	}
	t.Logf("264KB: aligned %d (%.0f%%), unaligned %d (%.0f%%)", alV, alEff*100, unV, unEff*100)
	if alV < 55 || alV > 75 {
		t.Errorf("aligned streams %d, paper reports 67", alV)
	}
	if unV < 30 || unV > 42 {
		t.Errorf("unaligned streams %d, paper reports 36", unV)
	}
	if alEff < 0.7 || unEff > 0.55 {
		t.Errorf("efficiencies %.2f/%.2f, paper reports 0.83/0.45", alEff, unEff)
	}

	al2, _, err := s.HardRealTime(2*ts, true)
	if err != nil {
		t.Fatalf("HardRealTime: %v", err)
	}
	un2, _, err := s.HardRealTime(2*ts, false)
	if err != nil {
		t.Fatalf("HardRealTime: %v", err)
	}
	t.Logf("528KB: aligned %d, unaligned %d", al2, un2)
	if al2 <= alV || un2 <= unV {
		t.Error("doubling the I/O size should admit more streams")
	}
	if un2 >= al2 {
		t.Error("aligned should still lead at 528 KB")
	}
}

// TestStartupLatencyLowerAligned (Figure 9): at a stream count only the
// aligned system reaches with track-sized I/Os, the unaligned system
// needs larger I/Os and so a higher startup latency.
func TestStartupLatencyLowerAligned(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo in -short mode")
	}
	s := testServer(t, 200)
	ts := s.TrackSectors()
	const v = 55
	latAl, ioAl, okAl, err := s.StartupLatency(v, true, 20*ts)
	if err != nil {
		t.Fatalf("StartupLatency: %v", err)
	}
	latUn, ioUn, okUn, err := s.StartupLatency(v, false, 20*ts)
	if err != nil {
		t.Fatalf("StartupLatency: %v", err)
	}
	if !okAl {
		t.Fatal("aligned system cannot support 55 streams at all")
	}
	if okUn && latUn <= latAl {
		t.Fatalf("unaligned latency %.0f ms (io %d) should exceed aligned %.0f ms (io %d)",
			latUn, ioUn, latAl, ioAl)
	}
	t.Logf("55 streams: aligned %.1f s (io %d sectors), unaligned %.1f s (io %d)",
		latAl/1000, ioAl, latUn/1000, ioUn)
}

func TestConfigDefaults(t *testing.T) {
	s := testServer(t, 1)
	cfg := s.Config()
	if cfg.Disks != 10 || cfg.BitRateMbps != 4 || cfg.DeadlineQ != 0.9999 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if s.Describe() == "" {
		t.Fatal("empty description")
	}
	if _, err := New(Config{Model: "bogus"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}
