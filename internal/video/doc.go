// Package video implements the paper's §5.4 video-server evaluation: a
// round-based scheduler serving fixed-bit-rate streams from an array of
// disks, with soft-real-time admission (Monte-Carlo percentile of round
// completion times, as in the RIO video server) and hard-real-time
// admission (worst-case seek route, rotation, and transfer).
//
// Track-aligned I/O raises disk efficiency, so a given round time admits
// more streams (56% more in the paper's configuration), or equivalently
// a given stream count needs a smaller I/O size and so a much lower
// startup latency (Figure 9).
//
// Key types: Server is the admission evaluator — RoundTimeQ /
// MeasureRounds run the Monte Carlo, MaxStreamsSoft binary-searches the
// sustainable stream count, and HardRealTime is the analytic worst
// case. Config composes the storage side: every Monte-Carlo round is
// served through a host-side stack (stack.Config: cache → sched.Queue
// → Device), so queue depth, scheduler policy, and host-cache budget
// are part of the experiment. Config.HotSetTracks bounds stream
// placement to popular content a cache can hold, and Config.Background
// adds a competing FFS-style small-I/O load (via driver.Stream) on the
// same spindle — the mixed-workload mode whose per-request responses
// MeasureRounds reports in RoundMetrics.
//
// Determinism: all randomness flows from Config.Seed through sources
// consumed in a fixed order, and the stack runs in virtual time on the
// caller's goroutine, so every measurement is bit-identical at any
// GOMAXPROCS. The zero-value stack is the transparent passthrough
// (depth-1 FCFS, zero-budget cache), pinned bit-identical to serving
// the bare device by differential test.
package video
