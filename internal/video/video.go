package video

import (
	"fmt"
	"math/rand"

	"traxtents/internal/device"
	"traxtents/internal/device/stack"
	"traxtents/internal/disk/model"
	"traxtents/internal/stats"
	"traxtents/internal/traxtent"
	"traxtents/internal/workload/driver"
)

// Config describes the server.
type Config struct {
	Model       string  // disk model (default Quantum-Atlas10KII)
	Disks       int     // array width (default 10)
	BitRateMbps float64 // per-stream rate (default 4)
	DeadlineQ   float64 // deadline-miss quantile (default 0.9999)
	Rounds      int     // Monte-Carlo rounds per configuration (default 1000)
	Seed        int64
	// NewDevice overrides the storage backend: it is called once per
	// Monte-Carlo measurement and must return a fresh device in a
	// deterministic state. When nil, a simulated disk of the configured
	// Model with its default firmware setup is used. HardRealTime is
	// analytic and always uses the Model's mechanical parameters.
	NewDevice func() (device.Device, error)

	// Stack composes the host-side stack (cache → scheduling queue →
	// device) every Monte-Carlo round is served through. The zero value
	// is the transparent passthrough — depth-1 FCFS queue, zero-budget
	// cache — pinned bit-identical to serving the bare device by
	// differential test. A reordering window lets the device's scheduler
	// play the per-round elevator; a cache budget models popular content
	// resident at the host.
	Stack stack.Config

	// HotSetTracks restricts stream placement to the first K tracks of
	// the content region — the popular content a host cache can hold; 0
	// places streams across the whole first zone (the paper's §5.4
	// setup).
	HotSetTracks int

	// Background adds a competing small-I/O workload on the same
	// spindle (the mixed-workload mode): an FFS-style stream of small
	// requests arriving open-Poisson while the server streams.
	Background Background
}

// Background describes the mixed-workload mode's competing small-I/O
// load. While the video server issues its per-round whole-track reads,
// background requests arrive at seeded-Poisson instants within each
// round and compete for the same spindle; RoundMetrics reports their
// response times next to the round quantile.
type Background struct {
	// RatePerSec is the open arrival rate in requests/second; 0
	// disables the background load.
	RatePerSec float64
	// IOSectors sizes the background requests (default 16 = 8 KB, the
	// FFS block size).
	IOSectors int
	// WriteEvery makes every k-th background request a write; 0 means
	// reads only.
	WriteEvery int
}

func (c *Config) fill() {
	if c.Model == "" {
		c.Model = "Quantum-Atlas10KII"
	}
	if c.Disks == 0 {
		c.Disks = 10
	}
	if c.BitRateMbps == 0 {
		c.BitRateMbps = 4
	}
	if c.DeadlineQ == 0 {
		c.DeadlineQ = 0.9999
	}
	if c.Rounds == 0 {
		c.Rounds = 1000
	}
	if c.Background.RatePerSec > 0 && c.Background.IOSectors == 0 {
		c.Background.IOSectors = 16
	}
}

// bytesPerMs returns the stream consumption rate in bytes per ms.
func (c *Config) bytesPerMs() float64 { return c.BitRateMbps * 1e6 / 8 / 1000 }

// Server evaluates admission for one device of the array (streams are
// striped uniformly, so the array scales by Disks).
type Server struct {
	cfg Config
	m   model.Model

	table  *traxtent.Table // device boundary table; nil if unavailable
	tracks int             // first-zone track size in sectors

	// Content region, precomputed once from a probe device (NewDevice
	// returns identical devices): the LBN range of the first (fastest)
	// zone and the aligned track-start candidates within it. Video
	// content lives in the first zone, whose track size matches the I/O
	// size — the placement video servers use anyway (Tiger stores
	// primary copies in the outer, faster zones; paper §6). Devices with
	// a physical layout yield the exact first zone; devices that only
	// expose track boundaries approximate it with the outermost eighth
	// of the table; devices with neither cannot host the Monte Carlo
	// (starts stays nil).
	zFirst, zLast int64
	starts        []int64
}

// New creates a server evaluator.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	m, err := model.Get(cfg.Model)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, m: m}
	if s.cfg.NewDevice == nil {
		s.cfg.NewDevice = func() (device.Device, error) {
			return m.NewDisk(m.DefaultConfig())
		}
	}
	// Probe one device for its boundary table, representative (largest,
	// first-zone) track size, and content region.
	d, err := s.cfg.NewDevice()
	if err != nil {
		return nil, err
	}
	if bp, ok := d.(device.BoundaryProvider); ok {
		if b := bp.TrackBoundaries(); len(b) >= 2 {
			if t, err := traxtent.New(b); err == nil {
				s.table = t
			}
		}
	}
	if s.table != nil {
		for i := 0; i < s.table.NumTracks(); i++ {
			if l := int(s.table.Index(i).Len); l > s.tracks {
				s.tracks = l
			}
		}
	}
	s.findRegion(d)
	return s, nil
}

// Config returns the filled configuration.
func (s *Server) Config() Config { return s.cfg }

// findRegion fills the content-region fields from the probe device.
func (s *Server) findRegion(d device.Device) {
	if m, ok := d.(device.Mapped); ok {
		if lay := m.Layout(); lay != nil {
			s.zFirst, s.zLast, _ = lay.ZoneLBNRange(0)
			lastTrack := lay.G.TrackIndex(lay.G.Zones[0].LastCyl, lay.G.Surfaces-1)
			for ti := 0; ti <= lastTrack; ti++ {
				if first, count := lay.TrackRange(ti); count > 0 {
					s.starts = append(s.starts, first)
				}
			}
			return
		}
	}
	if s.table != nil {
		n := s.table.NumTracks() / 8
		if n < 1 {
			n = s.table.NumTracks()
		}
		for i := 0; i < n; i++ {
			s.starts = append(s.starts, s.table.Index(i).Start)
		}
		s.zFirst = s.table.Index(0).Start
		s.zLast = s.table.Index(n-1).End() - 1
	}
}

// region returns the effective content region for one measurement:
// the configured hot set when HotSetTracks bounds placement, the whole
// first zone otherwise, validated against the I/O size.
func (s *Server) region(ioSectors int, aligned bool) (zFirst, zLast int64, starts []int64, err error) {
	zFirst, zLast, starts = s.zFirst, s.zLast, s.starts
	if len(starts) == 0 {
		return 0, 0, nil, fmt.Errorf("video: device exposes neither a physical layout nor track boundaries")
	}
	if k := s.cfg.HotSetTracks; k > 0 && k < len(starts) {
		// Tracks 0..k-1 hold the popular content; their LBNs are
		// contiguous, so the hot span ends where track k begins.
		zLast = starts[k] - 1
		starts = starts[:k]
	}
	if aligned {
		if starts[0]+int64(ioSectors) > zLast+1 {
			return 0, 0, nil, fmt.Errorf("video: no aligned placement for %d-sector I/Os", ioSectors)
		}
	} else if zLast-zFirst+1-int64(ioSectors) <= 0 {
		return 0, 0, nil, fmt.Errorf("video: %d-sector I/Os exceed the content region", ioSectors)
	}
	return zFirst, zLast, starts, nil
}

// RoundMetrics aggregates one Monte-Carlo measurement: the round-time
// quantile the admission decision uses, the host-cache hit rate of the
// composed stack, and — in the mixed-workload mode — the response
// times of the competing background small I/Os.
type RoundMetrics struct {
	Streams   int
	IOSectors int
	Aligned   bool
	// RoundQMs is the DeadlineQ quantile of the round completion time.
	RoundQMs float64
	// RoundMeanMs is the mean round completion time.
	RoundMeanMs float64
	// CacheHitRate is the stack's host-cache demand hit rate over the
	// timed rounds — the hot-set warmup's fills are excluded, so this
	// is the steady state (0 when the cache is a zero-budget bypass).
	CacheHitRate float64
	// BgRequests counts background requests issued; BgMeanMs/BgP95Ms
	// summarize their response times (0 when Background is off).
	BgRequests int
	BgMeanMs   float64
	BgP95Ms    float64
}

// RoundTimeQ measures, by Monte Carlo on the configured stack, the
// DeadlineQ quantile of the time to complete v simultaneous requests of
// ioSectors each (aligned: whole-track reads of that many sectors;
// unaligned: same size at uncorrelated offsets). Requests in a round are
// issued together and sorted by LBN — the per-round elevator schedule of
// RIO/Tiger.
func (s *Server) RoundTimeQ(v int, ioSectors int, aligned bool) (float64, error) {
	m, err := s.MeasureRounds(v, ioSectors, aligned)
	if err != nil {
		return 0, err
	}
	return m.RoundQMs, nil
}

// MeasureRounds runs the full Monte-Carlo measurement for v streams of
// ioSectors each: every round's requests are issued together at the
// round start, in ascending LBN order, through the composed host stack
// (cache → queue → device), and background small I/Os — when
// Config.Background enables them — arrive at seeded-Poisson instants
// within the round and compete for the same spindle. When the stack
// carries a cache budget and a hot set is configured, the hot tracks
// are served once before the timed rounds (popular content resident at
// the host), so the quantile measures the steady state.
func (s *Server) MeasureRounds(v int, ioSectors int, aligned bool) (RoundMetrics, error) {
	out := RoundMetrics{Streams: v, IOSectors: ioSectors, Aligned: aligned}
	d, err := s.cfg.NewDevice()
	if err != nil {
		return out, err
	}
	st, err := s.cfg.Stack.Build(d)
	if err != nil {
		return out, err
	}
	zFirst, zLast, starts, err := s.region(ioSectors, aligned)
	if err != nil {
		return out, err
	}
	span := zLast - zFirst + 1 - int64(ioSectors)

	if s.cfg.Stack.CacheMB > 0 && s.cfg.HotSetTracks > 0 {
		if err := s.warmHotSet(st, starts, zLast); err != nil {
			return out, err
		}
	}
	// Snapshot after the warmup so CacheHitRate reports the timed
	// rounds' steady state, not the warmup's guaranteed misses.
	warm := st.Stats()

	bg := s.cfg.Background
	var bgStream *driver.Stream
	var bgRng *rand.Rand
	if bg.RatePerSec > 0 {
		bgStream, err = driver.NewStream(st, driver.Workload{
			Requests:   1, // ignored by Stream; rounds draw what they need
			IOSectors:  bg.IOSectors,
			WriteEvery: bg.WriteEvery,
			Seed:       s.cfg.Seed + 104729,
		})
		if err != nil {
			return out, err
		}
		bgRng = rand.New(rand.NewSource(s.cfg.Seed + 7919))
	}

	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(v)*7 + int64(ioSectors)))
	roundMs := float64(ioSectors*512) / s.cfg.bytesPerMs()
	times := make([]float64, 0, s.cfg.Rounds)
	var bgResp []float64
	for r := 0; r < s.cfg.Rounds; r++ {
		lbns := make([]int64, 0, v)
		for i := 0; i < v; i++ {
			if aligned {
				// A whole number of tracks starting at a track boundary.
				lbn := starts[rng.Intn(len(starts))]
				if lbn+int64(ioSectors) > zLast+1 {
					i--
					continue
				}
				lbns = append(lbns, lbn)
			} else {
				lbns = append(lbns, zFirst+rng.Int63n(span))
			}
		}
		sortInt64(lbns)
		start := st.Now()
		for _, lbn := range lbns {
			if err := st.Submit(start, device.Request{LBN: lbn, Sectors: ioSectors}); err != nil {
				return out, err
			}
		}
		if bgStream != nil {
			ratePerMs := bg.RatePerSec / 1000
			for t := start + bgRng.ExpFloat64()/ratePerMs; t < start+roundMs; t += bgRng.ExpFloat64() / ratePerMs {
				if err := st.Submit(t, bgStream.Next()); err != nil {
					return out, err
				}
				out.BgRequests++
			}
		}
		rs, err := st.Drain()
		if err != nil {
			return out, err
		}
		var last float64
		for i, res := range rs {
			if i < len(lbns) {
				if res.Done > last {
					last = res.Done
				}
			} else {
				bgResp = append(bgResp, res.Response())
			}
		}
		times = append(times, last-start)
	}
	out.RoundQMs = stats.Percentile(times, s.cfg.DeadlineQ*100)
	out.RoundMeanMs = stats.Mean(times)
	if fin := st.Stats(); fin.Hits-warm.Hits+fin.Misses-warm.Misses > 0 {
		out.CacheHitRate = float64(fin.Hits-warm.Hits) /
			float64(fin.Hits-warm.Hits+fin.Misses-warm.Misses)
	}
	if len(bgResp) > 0 {
		out.BgMeanMs = stats.Mean(bgResp)
		out.BgP95Ms = stats.Percentile(bgResp, 95)
	}
	return out, nil
}

// warmHotSet serves one whole-track read of every hot-set track through
// the stack, filling the host cache before the timed rounds.
func (s *Server) warmHotSet(st *stack.Stack, starts []int64, zLast int64) error {
	for i, lbn := range starts {
		end := zLast + 1
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		if end <= lbn {
			continue
		}
		if _, err := st.Serve(st.Now(), device.Request{LBN: lbn, Sectors: int(end - lbn)}); err != nil {
			return err
		}
	}
	return nil
}

// MaxStreamsSoft returns the largest per-disk stream count whose
// DeadlineQ round time fits within the round duration implied by the
// I/O size (round = ioBytes / bitrate). This is the paper's soft-real-
// time admission: 70 aligned vs 45 unaligned streams per disk at one
// track per round.
func (s *Server) MaxStreamsSoft(ioSectors int, aligned bool, maxV int) (int, error) {
	roundMs := float64(ioSectors*512) / s.cfg.bytesPerMs()
	best := 0
	// Round times grow monotonically with v; binary search.
	lo, hi := 1, maxV
	for lo <= hi {
		mid := (lo + hi) / 2
		q, err := s.RoundTimeQ(mid, ioSectors, aligned)
		if err != nil {
			return 0, err
		}
		if q <= roundMs {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best, nil
}

// StartupLatency returns the worst-case startup latency for v streams
// per disk: the smallest feasible round time times (Disks+1), per Santos
// et al. as cited in §5.4. The I/O size is grown (whole tracks when
// aligned) until the round is feasible; ok=false if no size up to maxIO
// sectors works.
func (s *Server) StartupLatency(v int, aligned bool, maxIOSectors int) (latencyMs float64, ioSectors int, ok bool, err error) {
	trackSectors := s.trackSectors()
	step := trackSectors
	if !aligned {
		step = trackSectors // same sizes for comparability
	}
	for io := step; io <= maxIOSectors; io += step {
		roundMs := float64(io*512) / s.cfg.bytesPerMs()
		q, err := s.RoundTimeQ(v, io, aligned)
		if err != nil {
			return 0, 0, false, err
		}
		if q <= roundMs {
			return roundMs * float64(s.cfg.Disks+1), io, true, nil
		}
	}
	return 0, 0, false, nil
}

// trackSectors returns the device's first-zone (largest) track size in
// sectors, from its boundary table.
func (s *Server) trackSectors() int { return s.tracks }

// TrackSectors exposes the first-zone track size (the paper's 264 KB on
// the Atlas 10K II).
func (s *Server) TrackSectors() int { return s.trackSectors() }

// HardRealTime computes worst-case admission (§5.4.2): the scheduler
// sorts each round, so the worst total seek for v stops is v hops of
// Cyls/v cylinders (Reddy & Wyllie); unaligned access adds a full
// rotation of worst-case latency plus one head switch per request, while
// track-aligned access has neither. Returns the maximum stream count per
// disk and the implied disk efficiency.
func (s *Server) HardRealTime(ioSectors int, aligned bool) (streams int, efficiency float64, err error) {
	mm, err := s.m.Mechanism()
	if err != nil {
		return 0, 0, err
	}
	l, err := s.m.Layout()
	if err != nil {
		return 0, 0, err
	}
	roundMs := float64(ioSectors*512) / s.cfg.bytesPerMs()
	_, trackSec := l.TrackRange(0)
	st := mm.SlotTime(l.G.Zones[0].SPT)
	media := float64(ioSectors) * st
	tracksSpanned := (ioSectors + trackSec - 1) / trackSec

	perReq := func(v int) float64 {
		seek := mm.Seek(s.m.Cyls / v)
		t := seek + media
		if aligned {
			// Zero rotational latency, no head switch for whole tracks;
			// multi-track I/Os still pay the inter-track switches.
			t += float64(tracksSpanned-1) * mm.HeadSwitch
		} else {
			t += mm.Period()                            // worst-case rotation
			t += float64(tracksSpanned) * mm.HeadSwitch // at least one switch
		}
		return t
	}
	v := 0
	for cand := 1; cand <= 4096; cand++ {
		if float64(cand)*perReq(cand) <= roundMs {
			v = cand
		} else if v > 0 {
			break
		}
	}
	if v == 0 {
		return 0, 0, nil
	}
	efficiency = float64(v) * media / roundMs
	return v, efficiency, nil
}

// sortInt64 is a small insertion sort; rounds have at most ~100 entries.
func sortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Describe summarizes the configuration for reports.
func (s *Server) Describe() string {
	return fmt.Sprintf("%d x %s, %.0f Mb/s streams, %.2f%% deadlines",
		s.cfg.Disks, s.cfg.Model, s.cfg.BitRateMbps, s.cfg.DeadlineQ*100)
}
