package lfs

import (
	"math/rand"
	"testing"

	"traxtents/internal/device"
	"traxtents/internal/device/stack"
	"traxtents/internal/device/zoned"
)

func newZonedFlash(t testing.TB, zones int) *zoned.Device {
	t.Helper()
	f, err := zoned.NewFlash(64 * 1024)
	if err != nil {
		t.Fatalf("NewFlash: %v", err)
	}
	z, err := zoned.New(f, zoned.WithZones(zones))
	if err != nil {
		t.Fatalf("zoned.New: %v", err)
	}
	return z
}

// TestZoneSegments: the helper carves one segment per zone, exactly
// covering the device, and refuses non-zoned devices.
func TestZoneSegments(t *testing.T) {
	z := newZonedFlash(t, 16)
	segs, err := ZoneSegments(z)
	if err != nil {
		t.Fatalf("ZoneSegments: %v", err)
	}
	if len(segs) != 16 {
		t.Fatalf("got %d segments, want 16", len(segs))
	}
	b := z.ZoneBoundaries()
	for i, s := range segs {
		if s.Start != b[i] || s.Len != b[i+1]-b[i] {
			t.Fatalf("segment %d = %+v, want [%d, +%d)", i, s, b[i], b[i+1]-b[i])
		}
	}
	f, err := zoned.NewFlash(1024)
	if err != nil {
		t.Fatalf("NewFlash: %v", err)
	}
	if _, err := ZoneSegments(f); err == nil {
		t.Fatal("ZoneSegments accepted a non-zoned device")
	}
}

// TestLFSOverZoned is the tentpole integration: the LFS runs over a
// zoned device through the composed host stack, segments mapped 1:1
// onto zones. Every log flush is a sequential zone fill at the write
// pointer; the cleaner's segment reclaim is a zone reset. A hammered
// working set forces steady-state cleaning, and the whole run completes
// without a single zone violation — the LFS *is* the zone-legal host
// the protocol wants.
func TestLFSOverZoned(t *testing.T) {
	z := newZonedFlash(t, 16)
	segs, err := ZoneSegments(z)
	if err != nil {
		t.Fatalf("ZoneSegments: %v", err)
	}
	const blockSectors = 8
	l, err := NewLFSStack(z, stack.Config{}, segs, blockSectors)
	if err != nil {
		t.Fatalf("NewLFSStack: %v", err)
	}
	// Live working set ~ half the log; random overwrites force the
	// cleaner (and so zone resets) once the free list runs dry.
	zoneBlocks := segs[0].Len / blockSectors
	working := int64(8 * zoneBlocks)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		if err := l.Write(rng.Int63n(working)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if l.CleanResets == 0 {
		t.Fatal("steady-state cleaning issued no zone resets")
	}
	if l.CleanRead == 0 || l.CleanWritten == 0 {
		t.Fatalf("cleaner never ran: read %d written %d", l.CleanRead, l.CleanWritten)
	}
	if wc := l.MeasuredWriteCost(); wc <= 1 {
		t.Fatalf("measured write cost = %g, want > 1 under cleaning", wc)
	}
	if l.Now() <= 0 {
		t.Fatal("clock never advanced")
	}
	// Every live block still resolves to a location inside a segment.
	for blk := range l.LiveBlocks() {
		ext, ok := l.Lookup(blk)
		if !ok || ext.Start < 0 || ext.Start+ext.Len > z.Capacity() {
			t.Fatalf("block %d maps to %+v", blk, ext)
		}
	}
	// And the write pointers agree with the segment table: a zone is
	// untouched (pointer at start) only if its segment holds no blocks
	// and is not the open head.
	zd, _ := device.ZonedOf(l.HostStack())
	for i, s := range l.Segments() {
		wp := zd.WritePointer(i)
		if s.Live > 0 && wp == 0 {
			t.Fatalf("segment %d has %d live blocks but zone %d is unwritten", i, s.Live, i)
		}
		_ = wp
	}
}

// TestLFSZonedBareVsStack: the zero-config stack is a transparent
// passthrough, so a bare NewLFS over the zoned device and a
// NewLFSStack with the zero config replay the same workload to the
// same clock, counters, and reset count.
func TestLFSZonedBareVsStack(t *testing.T) {
	mk := func(wrap bool) *LFS {
		z := newZonedFlash(t, 16)
		segs, err := ZoneSegments(z)
		if err != nil {
			t.Fatalf("ZoneSegments: %v", err)
		}
		var l *LFS
		if wrap {
			l, err = NewLFSStack(z, stack.Config{}, segs, 8)
		} else {
			l, err = NewLFS(z, segs, 8)
		}
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return l
	}
	bare, stacked := mk(false), mk(true)
	rng := rand.New(rand.NewSource(23))
	blocks := make([]int64, 6000)
	for i := range blocks {
		blocks[i] = rng.Int63n(3000)
	}
	for i, blk := range blocks {
		if err := bare.Write(blk); err != nil {
			t.Fatalf("bare write %d: %v", i, err)
		}
		if err := stacked.Write(blk); err != nil {
			t.Fatalf("stacked write %d: %v", i, err)
		}
	}
	if bare.Now() != stacked.Now() {
		t.Fatalf("clocks diverge: %g vs %g", bare.Now(), stacked.Now())
	}
	if bare.CleanResets != stacked.CleanResets || bare.CleanRead != stacked.CleanRead ||
		bare.CleanWritten != stacked.CleanWritten || bare.NewWritten != stacked.NewWritten {
		t.Fatalf("counters diverge:\nbare:    resets %d read %d written %d new %d\nstacked: resets %d read %d written %d new %d",
			bare.CleanResets, bare.CleanRead, bare.CleanWritten, bare.NewWritten,
			stacked.CleanResets, stacked.CleanRead, stacked.CleanWritten, stacked.NewWritten)
	}
}
