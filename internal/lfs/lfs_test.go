package lfs

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"traxtents/internal/disk/model"
	"traxtents/internal/traxtent"
)

func TestWriteCostInterpolation(t *testing.T) {
	if WriteCost(32) != 1.01 {
		t.Fatalf("WriteCost(32) = %g", WriteCost(32))
	}
	if WriteCost(4096) != 3.00 {
		t.Fatalf("WriteCost(4096) = %g", WriteCost(4096))
	}
	if WriteCost(8) != 1.01 || WriteCost(1<<20) != 3.00 {
		t.Fatal("clamping broken")
	}
	// Monotone non-decreasing.
	prev := 0.0
	for kb := 16.0; kb <= 8192; kb *= 1.3 {
		v := WriteCost(kb)
		if v < prev {
			t.Fatalf("WriteCost not monotone at %g KB: %g < %g", kb, v, prev)
		}
		prev = v
	}
}

// TestTransferInefficiencyOrdering: aligned track-sized writes waste
// less time than unaligned ones; both approach 1 for huge transfers.
func TestTransferInefficiencyOrdering(t *testing.T) {
	m := model.MustGet("Quantum-Atlas10KII")
	l, err := m.Layout()
	if err != nil {
		t.Fatalf("Layout: %v", err)
	}
	_, trackSec := l.TrackRange(0)
	al, err := TransferInefficiency(m, trackSec, true, 200, 1)
	if err != nil {
		t.Fatalf("TI aligned: %v", err)
	}
	un, err := TransferInefficiency(m, trackSec, false, 200, 1)
	if err != nil {
		t.Fatalf("TI unaligned: %v", err)
	}
	if al >= un {
		t.Fatalf("aligned TI %.2f should be below unaligned %.2f", al, un)
	}
	big, err := TransferInefficiency(m, 8*trackSec, false, 100, 1)
	if err != nil {
		t.Fatalf("TI big: %v", err)
	}
	if big >= un {
		t.Fatalf("TI should fall with segment size: %.2f vs %.2f", big, un)
	}
}

// TestOWCMinimumAtTrackSize (Figure 10): the aligned OWC curve reaches
// its minimum at the track size, and that minimum is far below the
// unaligned curve's own minimum (paper: 44% lower).
func TestOWCMinimumAtTrackSize(t *testing.T) {
	m := model.MustGet("Quantum-Atlas10KII")
	sizes := []float64{32, 64, 128, 264, 528, 1056, 2112, 4096}
	al, err := OWCCurve(m, sizes, true, 120, 2)
	if err != nil {
		t.Fatalf("OWCCurve: %v", err)
	}
	un, err := OWCCurve(m, sizes, false, 120, 2)
	if err != nil {
		t.Fatalf("OWCCurve: %v", err)
	}
	minAt := func(pts []OWCPoint) (float64, float64) {
		best, kb := math.Inf(1), 0.0
		for _, p := range pts {
			if p.OWC < best {
				best, kb = p.OWC, p.SegKB
			}
		}
		return best, kb
	}
	alMin, alKB := minAt(al)
	unMin, _ := minAt(un)
	if alKB != 264 {
		t.Errorf("aligned OWC minimum at %g KB, want the 264 KB track", alKB)
	}
	saving := 1 - alMin/unMin
	// The paper reports 44% with Matthews et al.'s exact Auspex write
	// costs; with our interpolated curve the same mechanism yields ~30%
	// (EXPERIMENTS.md discusses the gap).
	if saving < 0.25 {
		t.Errorf("aligned OWC minimum %.2f vs unaligned %.2f: %.0f%% lower, paper reports 44%%",
			alMin, unMin, saving*100)
	}
	t.Logf("OWC minima: aligned %.2f @ %g KB, unaligned %.2f (%.0f%% lower)", alMin, alKB, unMin, saving*100)
	// The analytic model line should roughly match the unaligned curve
	// (the paper's verification).
	for _, p := range un {
		mod := WriteCost(p.SegKB) * ModelTI(5.2, 40, p.SegKB)
		if p.OWC > 2.5*mod || mod > 2.5*p.OWC {
			t.Errorf("unaligned OWC %.2f far from model %.2f at %g KB", p.OWC, mod, p.SegKB)
		}
	}
}

// buildLFS makes a small LFS over the first tracks of an Atlas 10K II.
func buildLFS(t testing.TB, variable bool, nSegs int) *LFS {
	t.Helper()
	m := model.MustGet("Quantum-Atlas10KII")
	d, err := m.NewDisk(m.DefaultConfig())
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	var segs []traxtent.Extent
	if variable {
		table, err := traxtent.New(d.Lay.Boundaries())
		if err != nil {
			t.Fatalf("table: %v", err)
		}
		for i := 0; i < nSegs; i++ {
			segs = append(segs, table.Index(i))
		}
	} else {
		segs = FixedSegments(int64(nSegs)*512, 512)[:nSegs]
	}
	l, err := NewLFS(d, segs, 16)
	if err != nil {
		t.Fatalf("NewLFS: %v", err)
	}
	return l
}

// TestLFSLiveDataSurvivesCleaning (property): after any pattern of
// overwrites that forces cleaning, exactly the most recent version of
// each logical block remains indexed, and segment live counts equal the
// index contents.
func TestLFSLiveDataSurvivesCleaning(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := buildLFS(t, true, 12)
		logical := int64(200) // working set smaller than capacity
		for op := 0; op < 3000; op++ {
			if err := l.Write(rng.Int63n(logical)); err != nil {
				return false
			}
		}
		// Every logical block written at least... check the indexed set
		// is consistent: lookup succeeds and locations are unique.
		seen := make(map[int64]bool)
		for b := range l.LiveBlocks() {
			loc, ok := l.Lookup(b)
			if !ok {
				return false
			}
			if seen[loc.Start] {
				return false // two blocks at one location
			}
			seen[loc.Start] = true
		}
		// Live counts match the index size.
		total := 0
		for _, s := range l.Segments() {
			if s.Live < 0 {
				return false
			}
			total += s.Live
		}
		return total == len(l.LiveBlocks())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestLFSWriteCostGrowsWithUtilization: a nearly-full LFS cleans more
// live data per segment, raising the measured write cost.
func TestLFSWriteCostGrowsWithUtilization(t *testing.T) {
	run := func(logical int64) float64 {
		rng := rand.New(rand.NewSource(5))
		l := buildLFS(t, true, 12)
		for op := 0; op < 6000; op++ {
			if err := l.Write(rng.Int63n(logical)); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		return l.MeasuredWriteCost()
	}
	low := run(100)  // ~25% utilization
	high := run(300) // ~75% utilization
	if low < 1 || high < 1 {
		t.Fatalf("write cost below 1: %g, %g", low, high)
	}
	if high <= low {
		t.Fatalf("write cost should grow with utilization: %.2f vs %.2f", low, high)
	}
}

// TestVariableSegmentsMatchTracks: the segment usage table of a
// traxtent-based LFS records per-track (variable) lengths (§5.5.1).
func TestVariableSegmentsMatchTracks(t *testing.T) {
	l := buildLFS(t, true, 10)
	segs := l.Segments()
	varied := false
	for i := 1; i < len(segs); i++ {
		if segs[i].Ext.Len != segs[0].Ext.Len {
			varied = true
		}
	}
	_ = varied // zone 0 tracks can be uniform; the point is exact alignment:
	m := model.MustGet("Quantum-Atlas10KII")
	lay, _ := m.Layout()
	for i, s := range segs {
		first, count := lay.TrackRange(i)
		if s.Ext.Start != first || s.Ext.Len != int64(count) {
			t.Fatalf("segment %d = %v, want track [%d,+%d)", i, s.Ext, first, count)
		}
	}
}

func TestNewLFSValidates(t *testing.T) {
	m := model.MustGet("Quantum-Atlas10KII")
	d, err := m.NewDisk(m.DefaultConfig())
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	if _, err := NewLFS(d, nil, 16); err == nil {
		t.Fatal("empty segment list accepted")
	}
	if _, err := NewLFS(d, []traxtent.Extent{{Start: 0, Len: 8}}, 16); err == nil {
		t.Fatal("segment smaller than a block accepted")
	}
}
