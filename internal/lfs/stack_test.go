package lfs

import (
	"math/rand"
	"testing"

	"traxtents/internal/device/stack"
	"traxtents/internal/disk/model"
	"traxtents/internal/traxtent"
)

// stackStore builds a small store over a fresh Atlas 10K II behind the
// given composition (nil segments = 64 whole-track segments from the
// device's own boundaries).
func stackStore(t *testing.T, cfg stack.Config) *LFS {
	t.Helper()
	m := model.MustGet("Quantum-Atlas10KII")
	d, err := m.NewDisk(m.DefaultConfig())
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	tbl, err := traxtent.New(d.Lay.Boundaries())
	if err != nil {
		t.Fatalf("traxtent.New: %v", err)
	}
	var segs []traxtent.Extent
	for i := 0; i < 64; i++ {
		segs = append(segs, tbl.Index(i))
	}
	l, err := NewLFSStack(d, cfg, segs, 16)
	if err != nil {
		t.Fatalf("NewLFSStack: %v", err)
	}
	return l
}

// churn drives seeded random overwrites hard enough to trigger the
// cleaner, returning the measured write cost and final clock.
func churn(t *testing.T, l *LFS) (cost, clock float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		if err := l.Write(rng.Int63n(1400)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	return l.MeasuredWriteCost(), l.Now()
}

// TestPassthroughStackBitIdentical: an LFS over the zero-value stack
// must time the same churn workload exactly as an LFS over the bare
// device — the same pin the video server and FFS carry.
func TestPassthroughStackBitIdentical(t *testing.T) {
	viaStack := stackStore(t, stack.Config{})
	if viaStack.HostStack() == nil || viaStack.Base() == viaStack.d {
		t.Fatal("stack not composed")
	}

	m := model.MustGet("Quantum-Atlas10KII")
	d, err := m.NewDisk(m.DefaultConfig())
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	tbl, err := traxtent.New(d.Lay.Boundaries())
	if err != nil {
		t.Fatalf("traxtent.New: %v", err)
	}
	var segs []traxtent.Extent
	for i := 0; i < 64; i++ {
		segs = append(segs, tbl.Index(i))
	}
	bare, err := NewLFS(d, segs, 16)
	if err != nil {
		t.Fatalf("NewLFS: %v", err)
	}
	if bare.HostStack() != nil || bare.Base() != bare.d {
		t.Fatal("bare store should have no stack")
	}

	sCost, sClock := churn(t, viaStack)
	bCost, bClock := churn(t, bare)
	if sCost != bCost || sClock != bClock {
		t.Fatalf("passthrough stack drifted from bare device: cost %g vs %g, clock %g vs %g",
			sCost, bCost, sClock, bClock)
	}
}

// TestCleanerHitsHostCache: with a cache budget in the stack, the
// cleaner's re-reads of recently written segments are host hits and
// the same churn finishes sooner on the virtual clock.
func TestCleanerHitsHostCache(t *testing.T) {
	_, slow := churn(t, stackStore(t, stack.Config{}))
	cached := stackStore(t, stack.Config{CacheMB: 8})
	_, fast := churn(t, cached)
	if hits := cached.HostStack().Stats().Hits; hits == 0 {
		t.Fatal("cleaner produced no host-cache hits")
	}
	if fast >= slow {
		t.Fatalf("host cache did not shorten the churn: %g ms vs %g ms", fast, slow)
	}
}

// TestStackValidationLFS: a bad composition surfaces from NewLFSStack.
func TestStackValidationLFS(t *testing.T) {
	m := model.MustGet("Quantum-Atlas10KII")
	d, err := m.NewDisk(m.DefaultConfig())
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	if _, err := NewLFSStack(d, stack.Config{Scheduler: "bogus"}, FixedSegments(4096, 512), 16); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}
