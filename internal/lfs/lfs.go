package lfs

import (
	"fmt"
	"math"
	"math/rand"

	"traxtents/internal/device"
	"traxtents/internal/device/stack"
	"traxtents/internal/disk/model"
	"traxtents/internal/disk/sim"
	"traxtents/internal/traxtent"
)

// auspexWriteCost interpolates the Auspex-trace write-cost curve of
// Matthews et al. (segment size in KB → write cost). Cleaning cost grows
// with segment size because larger segments drag more live data through
// the cleaner.
var auspexWriteCost = []struct {
	kb   float64
	cost float64
}{
	{32, 1.01}, {64, 1.02}, {128, 1.05}, {256, 1.10}, {512, 1.35},
	{1024, 1.80}, {2048, 2.40}, {4096, 3.00},
}

// WriteCost returns the interpolated Auspex write cost for a segment
// size in KB (log-linear between published points, clamped outside).
func WriteCost(segKB float64) float64 {
	pts := auspexWriteCost
	if segKB <= pts[0].kb {
		return pts[0].cost
	}
	if segKB >= pts[len(pts)-1].kb {
		return pts[len(pts)-1].cost
	}
	for i := 1; i < len(pts); i++ {
		if segKB <= pts[i].kb {
			f := (math.Log2(segKB) - math.Log2(pts[i-1].kb)) /
				(math.Log2(pts[i].kb) - math.Log2(pts[i-1].kb))
			return pts[i-1].cost + f*(pts[i].cost-pts[i-1].cost)
		}
	}
	return pts[len(pts)-1].cost
}

// TransferInefficiency measures Tactual/Tideal for random segment writes
// of the given size on the model disk: aligned segments start at track
// boundaries (and are written as whole-track pieces); unaligned segments
// land anywhere. Tideal is the first-zone streaming transfer time.
func TransferInefficiency(m model.Model, segSectors int, aligned bool, samples int, seed int64) (float64, error) {
	d, err := m.NewDisk(m.DefaultConfig())
	if err != nil {
		return 0, err
	}
	l := d.Lay
	rng := rand.New(rand.NewSource(seed))
	zFirst, zLast, _ := l.ZoneLBNRange(0)
	zc := l.G.Zones[0]
	lastTrack := l.G.TrackIndex(zc.LastCyl, l.G.Surfaces-1)
	mm := d.M
	st := mm.SlotTime(zc.SPT)
	ideal := float64(segSectors) * st

	var sum float64
	n := 0
	for n < samples {
		var lbn int64
		if aligned {
			ti := rng.Intn(lastTrack + 1)
			first, count := l.TrackRange(ti)
			if count == 0 || first+int64(segSectors) > zLast+1 {
				continue
			}
			lbn = first
		} else {
			lbn = zFirst + rng.Int63n(zLast-zFirst+1-int64(segSectors))
		}
		res, err := d.SubmitAt(d.Now(), sim.Request{LBN: lbn, Sectors: segSectors, Write: true})
		if err != nil {
			return 0, err
		}
		sum += res.Timing.HeadTime()
		n++
	}
	return (sum / float64(samples)) / ideal, nil
}

// OWCPoint is one Figure 10 data point.
type OWCPoint struct {
	SegKB     float64
	WriteCost float64
	TI        float64
	OWC       float64
}

// OWCCurve computes the Figure 10 series for the given model: OWC vs
// segment size, aligned or unaligned. Aligned segment sizes are rounded
// to whole first-zone tracks (variable segments, §5.5.1).
func OWCCurve(m model.Model, segKBs []float64, aligned bool, samples int, seed int64) ([]OWCPoint, error) {
	l, err := m.Layout()
	if err != nil {
		return nil, err
	}
	_, trackSec := l.TrackRange(0)
	out := make([]OWCPoint, 0, len(segKBs))
	for _, kb := range segKBs {
		sectors := int(kb * 1024 / 512)
		if aligned && sectors >= trackSec {
			// Whole (variable-sized) track segments; sub-track segments
			// stay at their size but start on a boundary.
			sectors = int(math.Round(float64(sectors)/float64(trackSec))) * trackSec
		}
		ti, err := TransferInefficiency(m, sectors, aligned, samples, seed)
		if err != nil {
			return nil, err
		}
		wc := WriteCost(float64(sectors) * 512 / 1024)
		out = append(out, OWCPoint{SegKB: kb, WriteCost: wc, TI: ti, OWC: wc * ti})
	}
	return out, nil
}

// ModelTI is the analytic transfer-inefficiency line the paper plots for
// comparison ("5.2ms*40MB/s"): Tpos*(BW/Sseg) + 1.
func ModelTI(posMs, bwMBps, segKB float64) float64 {
	return posMs*(bwMBps*1e6/1000)/(segKB*1024) + 1
}

// ---- Miniature LFS with variable-sized segments ----

// SegmentInfo is one entry of the segment usage table: start, length
// (variable, §5.5.1), and live-block count.
type SegmentInfo struct {
	Ext  traxtent.Extent
	Live int
}

// LFS is a small log-structured store of fixed-size blocks over a
// storage device, with traxtent-sized (variable) or fixed-size segments.
type LFS struct {
	d            device.Device
	blockSectors int64

	// Host-stack wiring (NewLFSStack): the composed stack d points at,
	// and the raw device underneath it. Both nil for a bare NewLFS.
	stack *stack.Stack
	base  device.Device

	segs    []SegmentInfo
	freeSeg []int // indexes of free segments
	cur     int   // segment being filled, -1 if none
	curOff  int64 // blocks written into cur

	// Block index: logical block -> (segment, slot).
	where map[int64]blockLoc
	// Per-segment slot contents: which logical block occupies each slot
	// (-1 = empty/superseded).
	contents []segState

	now      float64
	cleaning bool // reentrancy guard: Clean's relog writes

	// Zone integration: when the device (or any wrapper under the host
	// stack) is zoned, segments that begin on a zone boundary are reset
	// before reuse, so the log head always lands on the write pointer.
	zoned device.Zoned
	zb    []int64

	// Accounting for the measured write cost.
	NewWritten   int64 // blocks of new data written
	CleanRead    int64 // live blocks read by the cleaner
	CleanWritten int64 // live blocks rewritten by the cleaner
	CleanResets  int64 // zone resets issued when reopening segments
}

type blockLoc struct {
	seg  int
	slot int64
	// back-pointer for liveness: which logical block lives here
}

// segment slots record which logical block occupies them (or -1).
type segState struct {
	blocks []int64
}

// NewLFS builds an LFS whose segments are the given extents (use a
// traxtent.Table's tracks for track-matched variable segments, or
// fixed-size extents for the baseline).
func NewLFS(d device.Device, segments []traxtent.Extent, blockSectors int64) (*LFS, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("lfs: no segments")
	}
	l := &LFS{
		d:            d,
		blockSectors: blockSectors,
		cur:          -1,
		where:        make(map[int64]blockLoc),
	}
	for _, e := range segments {
		if e.Len < blockSectors {
			return nil, fmt.Errorf("lfs: segment %v smaller than a block", e)
		}
		l.segs = append(l.segs, SegmentInfo{Ext: e})
	}
	for i := range l.segs {
		l.freeSeg = append(l.freeSeg, i)
	}
	l.contents = make([]segState, len(l.segs))
	for i := range l.contents {
		l.contents[i].blocks = make([]int64, l.segs[i].Ext.Len/blockSectors)
		for j := range l.contents[i].blocks {
			l.contents[i].blocks[j] = -1
		}
	}
	if zd, ok := device.ZonedOf(d); ok {
		l.zoned = zd
		l.zb = zd.ZoneBoundaries()
	}
	return l, nil
}

// ZoneSegments returns one segment extent per zone of a zoned device
// (or a wrapper chain over one): segments map 1:1 onto zones, so a full
// segment is exactly one sequential zone fill and freeing a segment is
// one zone reset — the LFS cleaner *is* the zone-reclaim path.
func ZoneSegments(d device.Device) ([]traxtent.Extent, error) {
	zd, ok := device.ZonedOf(d)
	if !ok {
		return nil, fmt.Errorf("lfs: device %T is not zoned", d)
	}
	b := zd.ZoneBoundaries()
	out := make([]traxtent.Extent, 0, len(b)-1)
	for i := 0; i+1 < len(b); i++ {
		out = append(out, traxtent.Extent{Start: b[i], Len: b[i+1] - b[i]})
	}
	return out, nil
}

// FixedSegments carves [0, n) LBNs into fixed-size extents, the
// non-traxtent baseline.
func FixedSegments(total int64, segSectors int64) []traxtent.Extent {
	var out []traxtent.Extent
	for at := int64(0); at+segSectors <= total; at += segSectors {
		out = append(out, traxtent.Extent{Start: at, Len: segSectors})
	}
	return out
}

// NewLFSStack builds the store over the composed host stack (cache →
// scheduling queue → device): every log write and cleaner read is
// served through it. The zero-value config is the transparent
// passthrough, pinned bit-identical to a bare NewLFS over the same
// device; a cache budget makes the cleaner's segment re-reads host
// hits when the segments it compacts are still resident.
func NewLFSStack(d device.Device, cfg stack.Config, segments []traxtent.Extent, blockSectors int64) (*LFS, error) {
	st, err := cfg.Build(d)
	if err != nil {
		return nil, fmt.Errorf("lfs: %w", err)
	}
	l, err := NewLFS(st, segments, blockSectors)
	if err != nil {
		return nil, err
	}
	l.stack, l.base = st, d
	return l, nil
}

// Base returns the raw device under the composed host stack (the
// store's own device for a bare NewLFS).
func (l *LFS) Base() device.Device {
	if l.base != nil {
		return l.base
	}
	return l.d
}

// HostStack returns the composed host stack of a NewLFSStack store
// (nil for a bare NewLFS).
func (l *LFS) HostStack() *stack.Stack { return l.stack }

// Now returns the virtual clock.
func (l *LFS) Now() float64 { return l.now }

// Segments exposes the segment usage table.
func (l *LFS) Segments() []SegmentInfo {
	out := make([]SegmentInfo, len(l.segs))
	copy(out, l.segs)
	return out
}

// Lookup returns where a logical block lives.
func (l *LFS) Lookup(block int64) (traxtent.Extent, bool) {
	loc, ok := l.where[block]
	if !ok {
		return traxtent.Extent{}, false
	}
	seg := l.segs[loc.seg]
	return traxtent.Extent{Start: seg.Ext.Start + loc.slot*l.blockSectors, Len: l.blockSectors}, true
}

// Write logs a new version of the logical block. A full segment is
// flushed with one disk write; a fresh segment is taken from the free
// list (cleaning if none remain).
func (l *LFS) Write(block int64) error {
	if l.cur == -1 {
		if err := l.openSegment(); err != nil {
			return err
		}
	}
	// Supersede the old version.
	if old, ok := l.where[block]; ok {
		l.segs[old.seg].Live--
		l.contents[old.seg].blocks[old.slot] = -1
	}
	l.contents[l.cur].blocks[l.curOff] = block
	l.where[block] = blockLoc{seg: l.cur, slot: l.curOff}
	l.segs[l.cur].Live++
	l.curOff++
	l.NewWritten++
	if l.curOff >= l.segs[l.cur].Ext.Len/l.blockSectors {
		return l.flush()
	}
	return nil
}

// flush writes the current segment to disk in one request.
func (l *LFS) flush() error {
	seg := l.segs[l.cur].Ext
	res, err := l.d.Serve(l.now, device.Request{LBN: seg.Start, Sectors: int(l.curOff * l.blockSectors), Write: true})
	if err != nil {
		return err
	}
	l.now = res.Done
	l.cur = -1
	l.curOff = 0
	return nil
}

// openSegment takes a free segment, running the cleaner if necessary.
// One segment is held in reserve for the cleaner itself, so its relog
// writes can always proceed (the classic LFS cleaner reserve).
func (l *LFS) openSegment() error {
	threshold := 2
	if l.cleaning {
		threshold = 1
	}
	for i := 0; len(l.freeSeg) < threshold; i++ {
		if l.cleaning {
			return fmt.Errorf("lfs: log full during cleaning")
		}
		if i > 2*len(l.segs) {
			return fmt.Errorf("lfs: cleaner recovered no space (log full)")
		}
		if err := l.Clean(1); err != nil {
			return err
		}
	}
	l.cur = l.freeSeg[0]
	l.freeSeg = l.freeSeg[1:]
	l.curOff = 0
	// On a zoned device a reused segment's zone still has its write
	// pointer at the old fill's end; reset it so the coming flush lands
	// on the pointer. Only whole-zone segments (start on a boundary)
	// are reset — resetting would wipe any neighbours sharing the zone.
	if l.zoned != nil {
		seg := l.segs[l.cur].Ext
		if zi := l.zoneOf(seg.Start); zi >= 0 && l.zb[zi] == seg.Start && l.zoned.WritePointer(zi) > seg.Start {
			done, err := l.zoned.ResetZoneAt(l.now, zi)
			if err != nil {
				return err
			}
			l.now = done
			l.CleanResets++
		}
	}
	return nil
}

// zoneOf returns the zone index containing lbn, or -1.
func (l *LFS) zoneOf(lbn int64) int {
	for i := 0; i+1 < len(l.zb); i++ {
		if lbn >= l.zb[i] && lbn < l.zb[i+1] {
			return i
		}
	}
	return -1
}

// Clean reclaims up to n segments: it picks the lowest-utilization
// non-empty segments, reads their live blocks, and relogs them.
func (l *LFS) Clean(n int) error {
	for k := 0; k < n; k++ {
		victim := -1
		bestLive := 1 << 30
		for i := range l.segs {
			if i == l.cur || l.isFree(i) {
				continue
			}
			if l.segs[i].Live < bestLive {
				bestLive = l.segs[i].Live
				victim = i
			}
		}
		if victim == -1 {
			return nil
		}
		// Read the whole victim (the cleaner reads segments wholesale).
		seg := l.segs[victim].Ext
		res, err := l.d.Serve(l.now, device.Request{LBN: seg.Start, Sectors: int(seg.Len)})
		if err != nil {
			return err
		}
		l.now = res.Done
		var live []int64
		for slot, blk := range l.contents[victim].blocks {
			if blk >= 0 {
				live = append(live, blk)
				l.contents[victim].blocks[slot] = -1
			}
		}
		l.CleanRead += int64(len(live))
		l.segs[victim].Live = 0
		l.freeSeg = append(l.freeSeg, victim)
		// Relog the live blocks (they count as cleaner writes).
		wasCleaning := l.cleaning
		l.cleaning = true
		for _, blk := range live {
			delete(l.where, blk)
			if err := l.Write(blk); err != nil {
				l.cleaning = wasCleaning
				return err
			}
			l.NewWritten--
			l.CleanWritten++
		}
		l.cleaning = wasCleaning
	}
	return nil
}

func (l *LFS) isFree(i int) bool {
	for _, f := range l.freeSeg {
		if f == i {
			return true
		}
	}
	return false
}

// MeasuredWriteCost returns (new + cleanRead + cleanWritten) / new, the
// §5.5 write-cost numerator over the workload so far.
func (l *LFS) MeasuredWriteCost() float64 {
	if l.NewWritten == 0 {
		return 0
	}
	return float64(l.NewWritten+l.CleanRead+l.CleanWritten) / float64(l.NewWritten)
}

// LiveBlocks returns the set of logical blocks currently stored.
func (l *LFS) LiveBlocks() map[int64]bool {
	out := make(map[int64]bool, len(l.where))
	for b := range l.where {
		out[b] = true
	}
	return out
}
