// Package lfs implements the paper's §5.5 log-structured file system
// evaluation in two parts:
//
//  1. The overall-write-cost (OWC) model of Matthews et al.:
//     OWC = WriteCost × TransferInefficiency, where WriteCost comes from
//     the published Auspex-trace values (we interpolate their curve — we
//     do not have the trace; DESIGN.md records the substitution) and
//     TransferInefficiency is *measured* on the disk simulator for
//     track-aligned and unaligned segment writes (Figure 10).
//
//  2. A working miniature LFS — segment log, segment usage table with
//     variable-sized segments matched to traxtents (§5.5.1), and a
//     greedy cleaner — used to validate the invariants behind the model
//     (live data survives cleaning; measured write cost behaves).
//
// Key types: LFS (NewLFS over any device.Device and a segment list;
// NewLFSStack composes the host stack — cache → scheduling queue →
// device — underneath it, with the zero stack.Config a bit-identical
// passthrough) and OWCCurve (the Figure 10 series).
//
// Determinism: the log, usage table, and greedy cleaner keep all state
// in slices ordered by segment index, and the device runs in virtual
// time on the caller's goroutine, so a fixed workload is bit-identical
// at any GOMAXPROCS.
package lfs
