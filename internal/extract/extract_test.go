package extract

import (
	"testing"

	"traxtents/internal/disk/geom"
	"traxtents/internal/disk/mech"
	"traxtents/internal/disk/model"
	"traxtents/internal/disk/sim"
)

func testDisk(t *testing.T, cfg sim.Config, zeroLat bool, defects geom.DefectList) *sim.Disk {
	t.Helper()
	g := &geom.Geometry{
		Name:       "extract-test",
		Surfaces:   3,
		Cyls:       60,
		SectorSize: 512,
		Zones: []geom.Zone{
			{FirstCyl: 0, LastCyl: 19, SPT: 40, TrackSkew: 4, CylSkew: 6},
			{FirstCyl: 20, LastCyl: 39, SPT: 32, TrackSkew: 3, CylSkew: 5},
			{FirstCyl: 40, LastCyl: 59, SPT: 24, TrackSkew: 3, CylSkew: 4},
		},
		Scheme:  geom.SparePerCylinder,
		SpareK:  2,
		Defects: defects,
	}
	l, err := geom.Build(g)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m, err := mech.New(mech.Spec{
		RPM: 10000, HeadSwitch: 0.8, WriteSettle: 1.0,
		SeekSingle: 0.8, SeekAvg: 4.7, SeekFull: 10, ZeroLatency: zeroLat,
	}, g.Cyls)
	if err != nil {
		t.Fatalf("mech.New: %v", err)
	}
	return sim.New(l, m, cfg)
}

func checkBoundaries(t *testing.T, got, want []int64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d boundaries, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: boundary %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestGeneralExactOnCleanDisk: noise-free extraction recovers the exact
// boundary table on both zero-latency and ordinary disks.
func TestGeneralExactOnCleanDisk(t *testing.T) {
	for _, zl := range []bool{true, false} {
		d := testDisk(t, sim.Config{BusMBps: 80, CmdOverhead: 0.2}, zl, nil)
		rep, err := General(d, Options{})
		if err != nil {
			t.Fatalf("zl=%v: General: %v", zl, err)
		}
		checkBoundaries(t, rep.Table.Boundaries(), d.Lay.Boundaries(), "clean")
		if rep.Reads == 0 || rep.SimulatedMs <= 0 {
			t.Fatalf("zl=%v: missing report stats: %+v", zl, rep)
		}
	}
}

// TestGeneralWithDefects: slipped defects shorten tracks; the full
// search path must find the irregular boundaries.
func TestGeneralWithDefects(t *testing.T) {
	defects := geom.DefectList{
		{Cyl: 3, Head: 1, Slot: 10},
		{Cyl: 3, Head: 1, Slot: 11}, // two on one track
		{Cyl: 25, Head: 0, Slot: 5},
		{Cyl: 50, Head: 2, Slot: 1},
	}
	d := testDisk(t, sim.Config{BusMBps: 80, CmdOverhead: 0.2}, true, defects)
	rep, err := General(d, Options{})
	if err != nil {
		t.Fatalf("General: %v", err)
	}
	checkBoundaries(t, rep.Table.Boundaries(), d.Lay.Boundaries(), "defects")
}

// TestGeneralDefeatsCache: with the firmware cache enabled, interleaved
// extraction still matches ground truth...
func TestGeneralDefeatsCache(t *testing.T) {
	cfg := sim.Config{BusMBps: 80, CmdOverhead: 0.2, CacheSegments: 4, CacheSegSectors: 256, ReadAhead: true}
	d := testDisk(t, cfg, true, nil)
	rep, err := General(d, Options{})
	if err != nil {
		t.Fatalf("General: %v", err)
	}
	checkBoundaries(t, rep.Table.Boundaries(), d.Lay.Boundaries(), "cache+interleave")
}

// ...whereas a non-interleaved extraction is poisoned by cache hits —
// the paper's rationale for the 100-way interleave.
func TestGeneralWithoutInterleaveFails(t *testing.T) {
	cfg := sim.Config{BusMBps: 80, CmdOverhead: 0.2, CacheSegments: 4, CacheSegSectors: 256, ReadAhead: true}
	d := testDisk(t, cfg, true, nil)
	rep, err := General(d, Options{Interleave: 1})
	if err != nil {
		return // loud failure is the acceptable outcome
	}
	got, want := rep.Table.Boundaries(), d.Lay.Boundaries()
	if len(got) == len(want) {
		same := true
		for i := range got {
			if got[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("single-context extraction unexpectedly survived the firmware cache")
		}
	}
}

// TestGeneralWithNoise: with host-side measurement jitter, multi-sample
// averaging still recovers the exact table.
func TestGeneralWithNoise(t *testing.T) {
	cfg := sim.Config{BusMBps: 80, CmdOverhead: 0.2, HostNoiseSD: 0.03, Seed: 17}
	d := testDisk(t, cfg, true, nil)
	rep, err := General(d, Options{Samples: 5})
	if err != nil {
		t.Fatalf("General: %v", err)
	}
	checkBoundaries(t, rep.Table.Boundaries(), d.Lay.Boundaries(), "noise")
}

// TestGeneralOnRealModel runs the timing extraction on a full-size
// evaluation disk.
func TestGeneralOnRealModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size disk in -short mode")
	}
	m := model.MustGet("Quantum-Atlas10K")
	d, err := m.NewDisk(m.DefaultConfig())
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	rep, err := General(d, Options{})
	if err != nil {
		t.Fatalf("General: %v", err)
	}
	checkBoundaries(t, rep.Table.Boundaries(), d.Lay.Boundaries(), "atlas10k")
	t.Logf("atlas10k: %d tracks, %d reads, %.1f simulated minutes",
		rep.Table.NumTracks(), rep.Reads, rep.SimulatedMs/60000)
}
