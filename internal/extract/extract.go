package extract

import (
	"errors"
	"fmt"
	"sort"

	"traxtents/internal/device"
	"traxtents/internal/traxtent"
)

// Options tunes the extraction.
type Options struct {
	// Interleave is the number of regions extracted concurrently. It
	// must exceed the firmware cache segment count or timings will be
	// poisoned by cache hits. Default 100.
	Interleave int
	// Samples is the number of timing samples averaged per probe.
	// Default 1; use 3-5 against measurement noise.
	Samples int
	// MaxSPT bounds the per-track search. Default 2048.
	MaxSPT int
	// ThresholdSlots is the discontinuity threshold in slot times.
	// Default 2.5.
	ThresholdSlots float64
	// RetuneEvery forces a phase re-tune after this many tracks, to
	// bound drift. Default 64.
	RetuneEvery int
}

func (o *Options) fill() {
	if o.Interleave <= 0 {
		o.Interleave = 100
	}
	if o.Samples <= 0 {
		o.Samples = 1
	}
	if o.MaxSPT <= 0 {
		o.MaxSPT = 2048
	}
	if o.ThresholdSlots <= 0 {
		o.ThresholdSlots = 2.5
	}
	if o.RetuneEvery <= 0 {
		o.RetuneEvery = 64
	}
}

// Report is the extraction outcome.
type Report struct {
	Table *traxtent.Table
	// Reads is the number of read commands issued; SimulatedMs is the
	// disk time the extraction consumed (the paper reports four hours
	// for a 9 GB disk with its implementation).
	Reads       int
	SimulatedMs float64
}

// General extracts the device's track boundary table by timing reads.
// The method needs rotation-synchronized probes, so the device must be
// a device.Rotational with a known (non-zero) period.
func General(d device.Device, opts Options) (*Report, error) {
	opts.fill()
	total := d.Capacity()
	if total <= 0 {
		return nil, errors.New("extract: empty disk")
	}
	rot, ok := d.(device.Rotational)
	if !ok || rot.RotationPeriod() <= 0 {
		return nil, errors.New("extract: device has no known rotation period (required for timing-based extraction)")
	}
	// Each region should span several tracks, or the fixed per-region
	// costs (phase tuning, first-boundary search) dominate and the
	// straggler phase at the end of the run stretches out. 512 sectors
	// is 1.5-20 tracks across the disks of this era.
	k := opts.Interleave
	if int64(k) > total/512 {
		k = int(total / 512)
		if k == 0 {
			k = 1
		}
	}

	e := &engine{d: d, opts: opts, period: rot.RotationPeriod()}

	// Carve the LBN space into k regions.
	type region struct{ start, end int64 }
	regions := make([]region, 0, k)
	per := total / int64(k)
	for i := 0; i < k; i++ {
		start := int64(i) * per
		end := start + per
		if i == k-1 {
			end = total
		}
		regions = append(regions, region{start, end})
	}

	// Run one worker goroutine per region; the scheduler below services
	// their measurements strictly round-robin, which is what defeats the
	// firmware cache.
	type answer struct{ v float64 }
	type probe struct {
		lbn, anchor int64
		n           int
		phase       float64
		resp        chan answer
	}
	chans := make([]chan probe, len(regions))
	outs := make([][]int64, len(regions))
	errs := make([]error, len(regions))
	for i := range chans {
		chans[i] = make(chan probe)
	}
	for i, r := range regions {
		go func(i int, r region) {
			defer close(chans[i])
			// Fixed per-region head anchor, half a disk away.
			anchor := (r.start + total/2) % total
			m := func(lbn int64, n int, phase float64) float64 {
				p := probe{lbn: lbn, anchor: anchor, n: n, phase: phase, resp: make(chan answer)}
				chans[i] <- p
				return (<-p.resp).v
			}
			outs[i], errs[i] = e.extractRegion(r.start, r.end, m)
		}(i, r)
	}

	// The interleave only defeats the firmware cache while many regions
	// remain live: once stragglers are alone, their own probes would be
	// the only traffic and could be served from cache. The scheduler
	// therefore pads the stream with widespread dummy reads to keep the
	// effective interleave at minInterleave.
	const minInterleave = 24
	live := len(regions)
	done := make([]bool, len(regions))
	var doneRanges []region
	var dummies int64
	for live > 0 {
		for i := range chans {
			if done[i] {
				continue
			}
			p, ok := <-chans[i]
			if !ok {
				done[i] = true
				live--
				doneRanges = append(doneRanges, regions[i])
				continue
			}
			if live < minInterleave && len(doneRanges) > 0 {
				// Pad with reads confined to *finished* regions, so a
				// padding segment can never be mistaken for a live
				// region's data.
				for j := live; j < minInterleave; j++ {
					dummies++
					r := doneRanges[int(dummies)%len(doneRanges)]
					if span := r.end - r.start; span > 16 {
						lbn := r.start + (dummies*127)%(span-8)
						if _, err := e.d.Serve(e.d.Now(), device.Request{LBN: lbn, Sectors: 8}); err == nil {
							e.reads++
						}
					}
				}
			}
			v := e.measureOnce(p.lbn, p.anchor, p.n, p.phase)
			p.resp <- answer{v}
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("extract: region %d: %w", i, err)
		}
	}

	// Stitch: regions overlap by at most one boundary at each seam.
	var bounds []int64
	bounds = append(bounds, 0)
	for _, o := range outs {
		bounds = append(bounds, o...)
	}
	bounds = append(bounds, total)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	table, err := traxtent.New(uniq)
	if err != nil {
		return nil, fmt.Errorf("extract: inconsistent boundaries: %w", err)
	}
	return &Report{Table: table, Reads: e.reads, SimulatedMs: d.Now()}, nil
}

// engine issues rotation-synchronized measurements.
type engine struct {
	d      device.Device
	opts   Options
	period float64
	reads  int
}

// measureOnce issues one read at the next instant matching the given
// rotational phase and returns the response time.
//
// A probe's response is only comparable to another's if the arm starts
// from the same place: the seek is part of the response, so a varying
// starting position would shift the arrival phase. Each probe is
// therefore preceded by an "anchor" read half a disk away, issued with
// FUA (force unit access) so it always physically repositions the head
// regardless of the firmware cache. This makes the seek to the target
// constant per probe point.
func (e *engine) measureOnce(lbn, anchor int64, n int, phase float64) float64 {
	if _, err := e.d.Serve(e.d.Now(), device.Request{LBN: anchor, Sectors: 1, FUA: true}); err == nil {
		e.reads++
	}
	now := e.d.Now()
	// Next t >= now with t mod period == phase.
	k := (now - phase) / e.period
	ik := float64(int64(k))
	if ik < k {
		ik++
	}
	t := phase + ik*e.period
	if t < now {
		t += e.period
	}
	res, err := e.d.Serve(t, device.Request{LBN: lbn, Sectors: n})
	if err != nil {
		// Region logic clamps ranges; treat as a huge response so the
		// caller's search backs off rather than crashing.
		return 1e12
	}
	e.reads++
	return res.Response()
}

// measurer is the probe function handed to a region worker; it routes
// through the round-robin scheduler.
type measurer func(lbn int64, n int, phase float64) float64

// extractRegion finds every track boundary in [start, end), plus the
// first boundary at or past end (for seam stitching). It returns the
// boundary list in order.
func (e *engine) extractRegion(start, end int64, rawMeasure measurer) ([]int64, error) {
	total := e.d.Capacity()
	// Every legitimate probe pays at least the anchor-to-target seek; a
	// response far below the region's floor can only be a firmware
	// cache hit that slipped through the interleave. Retrying after the
	// scheduler's intervening traffic evicts the offending segment. The
	// floor is established from the region's first tune sweep, whose
	// probes are guaranteed fresh.
	regionFloor := 0.0
	one := func(lbn int64, n int, phase float64) float64 {
		r := rawMeasure(lbn, n, phase)
		for retry := 0; retry < 3 && r < regionFloor*0.6; retry++ {
			r = rawMeasure(lbn, n, phase)
		}
		return r
	}
	sample := func(lbn int64, n int, phase float64) float64 {
		if e.opts.Samples == 1 {
			return one(lbn, n, phase)
		}
		var sum float64
		for i := 0; i < e.opts.Samples; i++ {
			sum += one(lbn, n, phase)
		}
		return sum / float64(e.opts.Samples)
	}

	// tune finds a phase at which the head arrives shortly before the
	// sector at lbn: the argmin of single-sector responses over a coarse
	// phase sweep.
	tune := func(lbn int64) float64 {
		const probes = 8
		best, bestResp := 0.0, 1e18
		for i := 0; i < probes; i++ {
			ph := float64(i) / probes * e.period
			r := sample(lbn, 1, ph)
			if r < bestResp {
				bestResp, best = r, ph
			}
		}
		if regionFloor == 0 {
			regionFloor = bestResp
		}
		// Back off by a sixteenth of a revolution: the argmin phase
		// arrives just before the target sector, and the margin keeps
		// the arrival safely ahead of it under drift and noise (a
		// zero-latency disk that arrives just *inside* the wanted range
		// breaks the linear response model).
		best -= e.period / 16
		if best < 0 {
			best += e.period
		}
		return best
	}

	// slotTime estimates the per-sector time from successive response
	// deltas. The probe point can sit near a track's end, where one
	// delta is a boundary jump and — on a zero-latency disk whose read
	// wrapped — subsequent deltas shrink to the bus rate; the upper
	// median of four deltas is robust to both corruptions at once.
	slotTime := func(lbn int64, phase float64) (float64, error) {
		rs := make([]float64, 5)
		for i := range rs {
			rs[i] = sample(lbn, i+1, phase)
		}
		deltas := make([]float64, 0, len(rs)-1)
		for i := 1; i < len(rs); i++ {
			deltas = append(deltas, rs[i]-rs[i-1])
		}
		sort.Float64s(deltas)
		// Drop the largest delta (a potential boundary jump) and average
		// the rest. Under measurement noise this is slightly low-biased,
		// which is the safe direction: an overestimated slot time makes
		// the linear model overtake multi-track responses (whose mean
		// per-sector slope includes free skew gaps) and blinds the
		// search; an underestimate merely fires a little early, behind
		// the true crossing that the bisection prefers anyway.
		st := (deltas[0] + deltas[1] + deltas[2]) / 3
		if st <= 0 {
			return 0, fmt.Errorf("non-positive slot time at LBN %d (cache interference?)", lbn)
		}
		// Refine over a longer baseline when it stays within the track:
		// with measurement noise, a per-delta median carries a small
		// upward bias that the linear model then multiplies by N. The
		// 12-sector slope has negligible bias. Only adopt it if the long
		// read shows no boundary jump.
		const long = 12
		if lbn+long <= total {
			rl := sample(lbn, long, phase)
			// Accept only deviations well under one slot: a boundary jump
			// or a defect-slip hole inside the long read inflates the
			// slope and must leave the coarse estimate in place.
			if dev := rl - (rs[0] + float64(long-1)*st); dev < 0.75*st && dev > -0.75*st {
				refined := (rl - rs[0]) / float64(long-1)
				if refined > 0 {
					st = refined
				}
			}
		}
		return st, nil
	}

	var bounds []int64
	cur := start
	phase := tune(cur)
	st, err := slotTime(cur, phase)
	if err != nil {
		return nil, err
	}
	thresh := e.opts.ThresholdSlots * st

	// findBoundary binary-searches the smallest N in [2, maxN] whose
	// response exceeds the linear model; the boundary is at S+N-1.
	// findBoundaryFn allows the rare remapped-sector recursion below.
	var findBoundaryFn func(s int64) (int64, error)
	findBoundary := func(s int64) (int64, error) {
		base := sample(s, 1, phase)
		maxN := int64(e.opts.MaxSPT + 2)
		if s+maxN > total {
			maxN = total - s
		}
		if maxN < 2 {
			return total, nil
		}
		over := func(n int64) bool {
			r := sample(s, int(n), phase)
			return r > base+float64(n-1)*st+thresh
		}
		if !over(maxN) {
			if s+maxN >= total {
				return total, nil // disk ends within this track
			}
			return 0, fmt.Errorf("no boundary within %d sectors of LBN %d", maxN, s)
		}
		lo, hi := int64(1), maxN // over(lo) false, over(hi) true
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if over(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
		cand := s + hi - 1
		// Confirm locally: a true crossing shows the full jump between
		// the hi-1 and hi sector reads. A fire without a local jump is a
		// phantom from accumulated model error (the per-sector estimate
		// is only so precise over hundreds of sectors); restart with a
		// fresh base at the phantom point.
		if hi > 2 {
			jump := sample(s, int(hi), phase) - sample(s, int(hi-1), phase)
			if jump < 0.7*thresh {
				return findBoundaryFn(cand)
			}
		}
		// A remapped (grown-defect) sector produces the same response
		// discontinuity as a boundary, because reading it costs an
		// excursion to its spare location. Unlike a boundary, the
		// anomaly travels with the sector: reads *starting at* cand
		// still pay it, reads starting one later do not.
		if cand+9 <= total {
			rA := sample(cand, 8, phase)
			rB := sample(cand+1, 8, phase)
			if rA-rB > thresh {
				return findBoundaryFn(cand + 1)
			}
		}
		return cand, nil
	}
	findBoundaryFn = findBoundary

	// First boundary of the region (the region may start mid-track).
	b, err := findBoundary(cur)
	if err != nil {
		return nil, err
	}
	if b >= total {
		return bounds, nil
	}
	bounds = append(bounds, b)
	if b >= end {
		return bounds, nil
	}

	// Walk track by track. After the first full track we know its
	// length; verification needs only two reads per track.
	prevLen := int64(0)
	trackStart := b
	phase = tune(trackStart)
	if nst, err := slotTime(trackStart, phase); err == nil {
		st = nst
		thresh = e.opts.ThresholdSlots * st
	}
	sinceTune := 0
	for {
		if prevLen == 0 {
			nb, err := findBoundary(trackStart)
			if err != nil {
				return nil, err
			}
			if nb >= total {
				return bounds, nil
			}
			prevLen = nb - trackStart
			bounds = append(bounds, nb)
			// Propagate the phase across the boundary: the next track's
			// first sector follows the previous track's end by the skew
			// gap, measured as the response jump at the crossing.
			rFull := sample(trackStart, int(prevLen), phase)
			rCross := sample(trackStart, int(prevLen+1), phase)
			phase += rCross - rFull - st
			for phase >= e.period {
				phase -= e.period
			}
			trackStart = nb
			if nb >= end {
				return bounds, nil
			}
			continue
		}

		// Fast path: verify the predicted boundary with two reads.
		cand := trackStart + prevLen
		if cand >= total {
			return bounds, nil
		}
		sinceTune++
		if sinceTune >= e.opts.RetuneEvery {
			phase = tune(trackStart)
			sinceTune = 0
		}
		rFull := sample(trackStart, int(prevLen), phase)
		rCross := sample(trackStart, int(prevLen+1), phase)
		jump := rCross - rFull
		if jump > thresh {
			// Boundary confirmed at cand.
			bounds = append(bounds, cand)
			phase += jump - st
			for phase >= e.period {
				phase -= e.period
			}
			trackStart = cand
			if cand >= end {
				return bounds, nil
			}
			continue
		}
		// Prediction wrong: this track differs (zone change or defect).
		// Re-tune and run the full search.
		phase = tune(trackStart)
		sinceTune = 0
		if nst, err := slotTime(trackStart, phase); err == nil {
			st = nst
			thresh = e.opts.ThresholdSlots * st
		}
		prevLen = 0
	}
}
