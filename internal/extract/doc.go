// Package extract implements the general, interface-agnostic track
// boundary detection of §4.1.1: it discovers track boundaries purely by
// timing read commands, so it works on any disk that can read — no SCSI
// diagnostic pages required.
//
// Method, following the paper:
//
//   - Requests are issued synchronized with the rotation: each probe for
//     a region is issued at a fixed offset within the rotational period,
//     tuned so the head arrives just before the first wanted sector. At
//     that phase, the response to an N-sector read grows exactly
//     linearly in N while the read stays within one track, and jumps by
//     the head-switch/skew gap when it crosses a boundary.
//   - A binary search finds the smallest N whose response exceeds the
//     linear model: the boundary is at S+N-1.
//   - Once a track's size is known, each following track is verified
//     with two reads (full-track vs full-track-plus-one); only zone
//     changes and defective tracks fall back to the full search.
//   - To defeat the firmware cache, measurements for ~100 widespread
//     regions are interleaved round-robin, so the cache has always
//     evicted a region's data before the extractor returns to it
//     (§4.1.1's "100 parallel extraction operations").
//   - With measurement noise, each probe is the average of several
//     samples, themselves interleaved.
package extract
