package stats

// Quantile is an online estimator of a single quantile using the P²
// (piecewise-parabolic) algorithm of Jain and Chlamtac (1985): five
// markers track the minimum, the target quantile, the maximum, and the
// two midpoints, adjusting their heights with parabolic interpolation
// as observations stream in. Memory is O(1) and Add never allocates,
// so per-tenant p99/p99.99 response accounting can run inline on the
// request path without storing samples — the same estimator the
// streaming trace-replay statistics (ROADMAP item 5) will use.
//
// The zero value is not usable; construct with NewQuantile. Results are
// deterministic: the estimate is a pure function of the observation
// sequence.
type Quantile struct {
	p    float64
	n    int        // observations seen
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
}

// NewQuantile creates an estimator for the p-th quantile, 0 < p < 1
// (e.g. 0.99, 0.9999). Out-of-range targets are clamped into (0, 1).
func NewQuantile(p float64) *Quantile {
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		p = 1 - 1e-9
	}
	q := &Quantile{p: p}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// P returns the target quantile.
func (q *Quantile) P() float64 { return q.p }

// Reset discards every observation, returning the estimator to its
// just-constructed state (the target quantile is kept). It never
// allocates, so steady-state replay loops reset their quantiles
// between runs without touching the heap.
func (q *Quantile) Reset() {
	q.n = 0
	q.q = [5]float64{}
	q.pos = [5]float64{}
	q.want = [5]float64{}
}

// Count returns the number of observations.
func (q *Quantile) Count() int { return q.n }

// Add records one observation.
func (q *Quantile) Add(x float64) {
	if q.n < 5 {
		// Insertion-sort the first five observations into the marker
		// heights; they seed the estimator exactly.
		i := q.n
		for i > 0 && q.q[i-1] > x {
			q.q[i] = q.q[i-1]
			i--
		}
		q.q[i] = x
		q.n++
		if q.n == 5 {
			p := q.p
			q.pos = [5]float64{1, 2, 3, 4, 5}
			q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	q.n++

	// Find the cell k with q[k] <= x < q[k+1], extending the extremes.
	var k int
	switch {
	case x < q.q[0]:
		q.q[0] = x
		k = 0
	case x >= q.q[4]:
		q.q[4] = x
		k = 3
	default:
		k = 0
		for k < 3 && x >= q.q[k+1] {
			k++
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.inc[i]
	}

	// Nudge the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if !(d >= 1 && q.pos[i+1]-q.pos[i] > 1) && !(d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			continue
		}
		s := 1.0
		if d < 0 {
			s = -1.0
		}
		// Parabolic adjustment; fall back to linear when it would push
		// the marker height out of order.
		np, nm, ni := q.pos[i+1], q.pos[i-1], q.pos[i]
		h := q.q[i] + s/(np-nm)*((ni-nm+s)*(q.q[i+1]-q.q[i])/(np-ni)+(np-ni-s)*(q.q[i]-q.q[i-1])/(ni-nm))
		if h <= q.q[i-1] || h >= q.q[i+1] {
			if s > 0 {
				h = q.q[i] + (q.q[i+1]-q.q[i])/(np-ni)
			} else {
				h = q.q[i] - (q.q[i-1]-q.q[i])/(nm-ni)
			}
		}
		q.q[i] = h
		q.pos[i] += s
	}
}

// Value returns the current quantile estimate: the height of the
// middle marker, or the exact sample quantile while fewer than five
// observations have been seen (0 with none).
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		// The prefix q[:n] is kept sorted; interpolate exactly.
		rank := q.p * float64(q.n-1)
		lo := int(rank)
		if lo >= q.n-1 {
			return q.q[q.n-1]
		}
		frac := rank - float64(lo)
		return q.q[lo]*(1-frac) + q.q[lo+1]*frac
	}
	return q.q[2]
}
