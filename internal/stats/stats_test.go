package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty inputs should yield 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %g, want 2", got)
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Fatalf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Fatal("single-sample percentile")
	}
}

func TestSummary(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 1000 || s.Min != 0 || s.Max != 999 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.P50-499.5) > 1 || s.P99 < 985 || s.P9999 < s.P99 {
		t.Fatalf("percentiles %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	h.Add(-5) // clamps into first bucket
	h.Add(50) // clamps into last bucket
	if h.Total() != 102 {
		t.Fatalf("Total = %d", h.Total())
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1] != 1 {
		t.Fatalf("CDF should end at 1: %v", cdf)
	}
	if got := h.InvCDF(0.5); got < 4 || got > 7 {
		t.Fatalf("InvCDF(0.5) = %g", got)
	}
	if c := h.BucketCenter(0); c != 0.5 {
		t.Fatalf("BucketCenter(0) = %g", c)
	}
	// Degenerate constructions are clamped, not panics.
	if NewHistogram(5, 5, 0).Total() != 0 {
		t.Fatal("degenerate histogram")
	}
}

// TestQuickPercentileMonotone: percentiles are monotone in p and bounded
// by min/max for arbitrary samples.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(200))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
