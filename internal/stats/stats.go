package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when
// fewer than two samples are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. The input need not be
// sorted. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return sortedPercentile(s, p)
}

// sortedPercentile is Percentile for an already-sorted slice.
func sortedPercentile(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary holds the common aggregate statistics for a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
	P9999  float64 // 99.99th percentile, used by soft-real-time admission
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	sum := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	if len(s) == 0 {
		return sum
	}
	sum.Min = s[0]
	sum.Max = s[len(s)-1]
	sum.P50 = sortedPercentile(s, 50)
	sum.P90 = sortedPercentile(s, 90)
	sum.P99 = sortedPercentile(s, 99)
	sum.P9999 = sortedPercentile(s, 99.99)
	return sum
}

// String renders the summary on one line with millisecond-style precision.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f p99.99=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P99, s.P9999, s.Max)
}

// Histogram is a fixed-width histogram over [Lo, Hi). Samples outside the
// range are clamped into the first/last bucket so that totals always match
// the number of observations.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	total   int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Buckets[i]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + (float64(i)+0.5)*w
}

// CDF returns, for each bucket upper edge, the cumulative fraction of
// observations at or below it. Empty histogram yields all zeros.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Buckets))
	if h.total == 0 {
		return out
	}
	run := 0
	for i, c := range h.Buckets {
		run += c
		out[i] = float64(run) / float64(h.total)
	}
	return out
}

// InvCDF returns the smallest bucket upper edge whose cumulative fraction
// reaches q (0..1]. It is the histogram analogue of a percentile and is
// used to pick round times that satisfy a deadline-miss probability.
func (h *Histogram) InvCDF(q float64) float64 {
	cdf := h.CDF()
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range cdf {
		if c >= q {
			return h.Lo + float64(i+1)*w
		}
	}
	return h.Hi
}
