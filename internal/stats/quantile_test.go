package stats

import (
	"math"
	"math/rand"
	"testing"
)

// rankBand asserts the streaming estimate lies between the exact
// sample quantiles at p-delta and p+delta (with a small absolute
// slack for flat regions) — a rank-based accuracy check that does not
// depend on the distribution's scale.
func rankBand(t *testing.T, name string, xs []float64, p, delta, slack float64, got float64) {
	t.Helper()
	lo := Percentile(xs, math.Max(0, p-delta)*100) - slack
	hi := Percentile(xs, math.Min(1, p+delta)*100) + slack
	if got < lo || got > hi {
		t.Errorf("%s: p=%g estimate %g outside sample band [%g, %g]", name, p, got, lo, hi)
	}
}

// TestQuantileAccuracy runs the P² estimator over seeded draws from
// several shapes and checks each estimate against the sorted-sample
// percentile band.
func TestQuantileAccuracy(t *testing.T) {
	const n = 20000
	dists := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() * 8 }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(4) == 0 {
				return 50 + r.Float64()*5 // slow mode (queueing tail)
			}
			return 1 + r.Float64()
		}},
	}
	targets := []struct{ p, delta float64 }{
		{0.50, 0.02},
		{0.90, 0.02},
		{0.99, 0.006},
		{0.9999, 0.0008},
	}
	for di, d := range dists {
		rng := rand.New(rand.NewSource(int64(42 + di)))
		xs := make([]float64, n)
		qs := make([]*Quantile, len(targets))
		for i := range targets {
			qs[i] = NewQuantile(targets[i].p)
		}
		for i := range xs {
			x := d.gen(rng)
			xs[i] = x
			for _, q := range qs {
				q.Add(x)
			}
		}
		for i, tg := range targets {
			if qs[i].Count() != n {
				t.Fatalf("%s: Count = %d, want %d", d.name, qs[i].Count(), n)
			}
			// Slack scales with the distribution's spread so the flat
			// bimodal plateau doesn't demand sub-ulp agreement.
			slack := (Max(xs) - Min(xs)) * 0.01
			rankBand(t, d.name, xs, tg.p, tg.delta, slack, qs[i].Value())
		}
	}
}

// TestQuantileSmall pins the exact small-sample behaviour: fewer than
// five observations fall back to the exact sorted-sample quantile.
func TestQuantileSmall(t *testing.T) {
	q := NewQuantile(0.5)
	if q.Value() != 0 {
		t.Fatalf("empty Value = %g, want 0", q.Value())
	}
	q.Add(7)
	if q.Value() != 7 {
		t.Fatalf("single-sample Value = %g, want 7", q.Value())
	}
	q.Add(3)
	if got := q.Value(); got != 5 {
		t.Fatalf("two-sample median = %g, want 5", got)
	}
	q.Add(5)
	if got := q.Value(); got != 5 {
		t.Fatalf("three-sample median = %g, want 5", got)
	}
	max := NewQuantile(0.9999)
	for _, x := range []float64{1, 9, 4} {
		max.Add(x)
	}
	if got := max.Value(); math.Abs(got-9) > 1e-2 {
		t.Fatalf("small-sample p99.99 = %g, want ~9", got)
	}
}

// TestQuantileMonotoneStream feeds a strictly increasing stream: the
// median estimate must land inside the observed range and track the
// middle, and the extreme markers must pin the true min/max.
func TestQuantileMonotoneStream(t *testing.T) {
	q := NewQuantile(0.5)
	const n = 10001
	for i := 0; i < n; i++ {
		q.Add(float64(i))
	}
	got := q.Value()
	if got < float64(n)*0.45 || got > float64(n)*0.55 {
		t.Fatalf("median of 0..%d = %g, want ~%d", n-1, got, n/2)
	}
	if q.q[0] != 0 || q.q[4] != float64(n-1) {
		t.Fatalf("extreme markers [%g, %g], want [0, %d]", q.q[0], q.q[4], n-1)
	}
}

// TestQuantileDeterministic: the estimate is a pure function of the
// observation sequence.
func TestQuantileDeterministic(t *testing.T) {
	run := func() float64 {
		rng := rand.New(rand.NewSource(99))
		q := NewQuantile(0.99)
		for i := 0; i < 5000; i++ {
			q.Add(rng.ExpFloat64())
		}
		return q.Value()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("estimates differ across identical runs: %g vs %g", a, b)
	}
}

// TestQuantileClamp: out-of-range targets clamp into (0, 1) instead of
// producing NaNs.
func TestQuantileClamp(t *testing.T) {
	for _, p := range []float64{-1, 0, 1, 2} {
		q := NewQuantile(p)
		for i := 0; i < 100; i++ {
			q.Add(float64(i % 13))
		}
		if v := q.Value(); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("NewQuantile(%g).Value() = %g", p, v)
		}
	}
}
