// Package stats provides the small set of statistics helpers used by the
// traxtents experiments: means, standard deviations, percentiles, and
// fixed-width histograms for response-time distributions.
package stats
