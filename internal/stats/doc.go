// Package stats provides the small set of statistics helpers used by the
// traxtents experiments: means, standard deviations, percentiles,
// fixed-width histograms for response-time distributions, and a
// streaming P² quantile estimator (Quantile) for online p99/p99.99
// accounting without stored samples.
package stats
