// Package volume is the multi-tenant volume server: a Manager maps
// many logical volumes — one per tenant, each a private LBN space —
// onto one or more shard devices (striped arrays, composed host
// stacks, or bare disks), and arbitrates the tenants' requests on the
// way down.
//
// Placement is deterministic and traxtent-granular: a volume is a list
// of whole extents, each extent one traxtent (track or stripe unit) of
// its shard, chosen by an FNV hash of (tenant, extent index) over the
// shards and lowest-free-first within a shard, so a volume request
// never straddles a track boundary unless the tenant's own request
// does. WithExtentSectors switches to fixed-size extents that ignore
// the shards' boundaries — the unaligned layout the tenant study
// compares against.
//
// Above the shards sits per-tenant admission control (token-bucket
// request-rate and bandwidth limits with deterministic rejection or
// deferral, plus queue-depth caps) and a scheduler tier — start-time
// fair queueing or earliest-deadline-first across tenants — running as
// a sched.Queue over each shard, above whatever per-spindle scheduling
// the shard itself composes. Per-tenant response tails (p50/p99/
// p99.99) are accounted online with the stats.Quantile P² estimator,
// so no samples are stored.
//
// Determinism: the Manager is single-goroutine like the rest of the
// stack; placement, admission, scheduling, and accounting are pure
// functions of the construction parameters and the submitted request
// sequence. A single-tenant Manager with no limits and the default
// tier (depth-1 FCFS) is a transparent passthrough, pinned
// bit-identical to the bare shard by a differential test.
package volume
