package volume

// White-box tests for the Submit error-path contract: a mid-batch
// device failure (a fault injector under a shard tier) must leave the
// tenant's token buckets, in-flight counts, and P² quantile state
// exactly as a clean ErrRejected would — and the shard-tier sequence
// mirrors must stay aligned with what the tier actually consumed.

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"traxtents/internal/device"
	"traxtents/internal/device/faults"
	"traxtents/internal/disk/model"
	"traxtents/internal/disk/sim"
)

func simDisk(t testing.TB, seed int64) *sim.Disk {
	t.Helper()
	m := model.MustGet("HP-C2247")
	cfg := m.DefaultConfig()
	cfg.Seed = seed
	d, err := m.NewDisk(cfg)
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	return d
}

// admitState is everything the rollback contract says a failed request
// must not disturb.
type admitState struct {
	reqTokens   float64
	secTokens   float64
	bucketAt    float64
	lastRelease float64
	unresolved  int
	deferred    int
	rejected    int
	served      int
	sumResp     float64
	stats       VolumeStats // includes the P² quantile estimates
	aggServed   int
	aggSum      float64
	aggStats    VolumeStats
}

func captureAdmit(m *Manager, v *Volume) admitState {
	return admitState{
		reqTokens:   v.reqTokens,
		secTokens:   v.secTokens,
		bucketAt:    v.bucketAt,
		lastRelease: v.lastRelease,
		unresolved:  v.unresolved,
		deferred:    v.deferred,
		rejected:    v.rejected,
		served:      v.served,
		sumResp:     v.sumResp,
		stats:       v.snapshot(),
		aggServed:   m.served,
		aggSum:      m.sumResp,
		aggStats:    m.Aggregate(),
	}
}

// straddleShape finds a tenant name whose placement starts on shard 0
// and reaches shard 1 within the first few extents, plus the volume
// LBN where the first shard-1 extent begins. Placement is a
// deterministic hash of the name, so the same name reproduces the
// shape on any manager over the same shard geometry.
func straddleShape(t *testing.T, size int64) (name string, cross int64) {
	t.Helper()
	for i := 0; i < 64; i++ {
		m, err := New([]device.Device{simDisk(t, 1), simDisk(t, 2)})
		if err != nil {
			t.Fatalf("probe manager: %v", err)
		}
		name = "tenant" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		v, err := m.AddVolume(name, size)
		if err != nil {
			t.Fatalf("probe AddVolume: %v", err)
		}
		if v.exts[0].Shard != 0 {
			continue
		}
		for j := 1; j < len(v.exts); j++ {
			if v.exts[j].Shard == 1 {
				return name, v.bounds[j]
			}
		}
	}
	t.Fatal("no probed tenant name straddles shard 0 then shard 1")
	return "", 0
}

func TestSubmitMidBatchRollback(t *testing.T) {
	const size = 4096
	name, cross := straddleShape(t, size)

	// Shard 1 is lost from t=0: every request to it dies with ErrLost,
	// surfacing from the fcfs tier's synchronous dispatch as a typed
	// device.Error — the mid-batch failure under test.
	lost, err := faults.New(simDisk(t, 2), faults.WithFailAt(0))
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	m, err := New([]device.Device{simDisk(t, 1), lost})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v, err := m.AddVolume(name, size, WithLimit(TenantLimit{
		IOPS:          1000,
		BurstRequests: 8,
		SectorsPerSec: 64000,
		BurstSectors:  512,
		MaxInFlight:   8,
	}))
	if err != nil {
		t.Fatalf("AddVolume: %v", err)
	}
	healthy := device.Request{LBN: 0, Sectors: 8} // inside extent 0, shard 0
	straddle := device.Request{LBN: cross - 8, Sectors: 16}

	// Warm-up: one healthy request settles, so the pre-failure state
	// being compared is non-trivial.
	if err := m.Submit(name, 1, healthy); err != nil {
		t.Fatalf("warm-up submit: %v", err)
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("warm-up drain: %v", err)
	}
	if v.served != 1 {
		t.Fatalf("warm-up served %d, want 1", v.served)
	}

	before := captureAdmit(m, v)

	// The straddling request admits (tokens flow), places its shard-0
	// span, then dies on shard 1 mid-batch.
	err = m.Submit(name, 2, straddle)
	if err == nil {
		t.Fatal("straddling submit over a lost shard succeeded")
	}
	var de *device.Error
	if !errors.As(err, &de) {
		t.Fatalf("mid-batch failure is %T (%v), want a *device.Error", err, err)
	}
	if errors.Is(err, ErrRejected) {
		t.Fatalf("device failure reported as admission rejection: %v", err)
	}
	if got := captureAdmit(m, v); !reflect.DeepEqual(got, before) {
		t.Fatalf("mid-batch failure disturbed tenant state:\nbefore: %+v\nafter:  %+v", before, got)
	}
	// The sequence mirrors track exactly what each tier consumed: the
	// fcfs tier consumed shard 1's sequence number before failing, and
	// shard 0's span is legitimately in flight.
	for _, sh := range m.shards {
		if sh.nextSeq != sh.tier.Stats().Submitted {
			t.Fatalf("shard %d seq mirror %d != tier submitted %d", sh.idx, sh.nextSeq, sh.tier.Stats().Submitted)
		}
	}

	// A second straddling submit: its shard-1 span now hits the sticky
	// tier at entry — no sequence number consumed — so the undo path
	// must realign the mirror and the rollback must hold again. The
	// advance inside Submit first folds the previous failure's orphaned
	// shard-0 span into its failed join, which must not account.
	err = m.Submit(name, 3, straddle)
	if err == nil {
		t.Fatal("second straddling submit succeeded")
	}
	if got := captureAdmit(m, v); !reflect.DeepEqual(got, before) {
		t.Fatalf("second failure disturbed tenant state:\nbefore: %+v\nafter:  %+v", before, got)
	}
	for _, sh := range m.shards {
		if sh.nextSeq != sh.tier.Stats().Submitted {
			t.Fatalf("shard %d seq mirror %d != tier submitted %d after sticky-entry undo", sh.idx, sh.nextSeq, sh.tier.Stats().Submitted)
		}
	}

	// Healthy traffic on the surviving shard still flows and accounts.
	if err := m.Submit(name, 4, healthy); err != nil {
		t.Fatalf("healthy submit after failures: %v", err)
	}
	if err := m.Submit(name, 5, healthy); err != nil {
		t.Fatalf("second healthy submit: %v", err)
	}
	if v.served < 2 {
		t.Fatalf("served %d after post-failure traffic, want >= 2", v.served)
	}
	if v.rejected != before.rejected {
		t.Fatalf("device failures counted as rejections: %d", v.rejected)
	}
	// The lost shard's tier is sticky by design; the barrier drain
	// surfaces its error rather than silently dropping the shard.
	if err := m.Drain(); err == nil {
		t.Fatal("drain over a sticky lost shard reported success")
	}
}

// TestUntagRestoresMirrors covers the tenant-metadata undo for the
// fair and edf tiers directly: tag then untag must restore the shard's
// per-sequence metadata and the tenant's SFQ finish tag bit-exactly.
func TestUntagRestoresMirrors(t *testing.T) {
	for _, tier := range []string{tierFair, tierEDF} {
		t.Run(tier, func(t *testing.T) {
			m, err := New([]device.Device{simDisk(t, 1)}, WithTier(tier), WithTierDepth(4))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			v, err := m.AddVolume("t0", 1024)
			if err != nil {
				t.Fatalf("AddVolume: %v", err)
			}
			sh := m.shards[0]
			// Establish non-trivial prior state.
			m.tag(sh, v, 1.0, 32)
			tags := append([]float64(nil), sh.seqTag...)
			deadlines := append([]float64(nil), sh.seqDeadline...)
			finish := append([]float64(nil), v.lastFinish...)

			prev := v.lastFinish[sh.idx]
			m.tag(sh, v, 2.0, 64)
			m.untag(sh, v, prev)

			if !reflect.DeepEqual(sh.seqTag, tags) {
				t.Fatalf("seqTag %v, want %v", sh.seqTag, tags)
			}
			if !reflect.DeepEqual(sh.seqDeadline, deadlines) {
				t.Fatalf("seqDeadline %v, want %v", sh.seqDeadline, deadlines)
			}
			if !reflect.DeepEqual(v.lastFinish, finish) {
				t.Fatalf("lastFinish %v, want %v", v.lastFinish, finish)
			}
		})
	}
}

// TestMaxInFlightBoundary pins the admission window's boundary at
// t == completion time: a completion landing exactly at the admission
// instant has left the window (the doneHeap pop is inclusive), which
// is consistent with the event core's inclusive AdvanceTo — by the
// time anything runs at t, every completion at t has fired. An arrival
// an ULP earlier still sees the request in flight.
func TestMaxInFlightBoundary(t *testing.T) {
	mk := func() (*Manager, *Volume, float64) {
		m, err := New([]device.Device{simDisk(t, 1)})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		v, err := m.AddVolume("t0", 1024, WithLimit(TenantLimit{MaxInFlight: 1}))
		if err != nil {
			t.Fatalf("AddVolume: %v", err)
		}
		res, err := m.ServeTenant("t0", 0, device.Request{LBN: 0, Sectors: 8})
		if err != nil {
			t.Fatalf("ServeTenant: %v", err)
		}
		if v.unresolved != 0 || len(v.doneHeap) != 1 {
			t.Fatalf("after barrier serve: unresolved=%d doneHeap=%d", v.unresolved, len(v.doneHeap))
		}
		return m, v, res.Done
	}

	t.Run("exactly at completion", func(t *testing.T) {
		m, v, done := mk()
		if _, err := m.ServeTenant("t0", done, device.Request{LBN: 8, Sectors: 8}); err != nil {
			t.Fatalf("arrival exactly at completion rejected: %v", err)
		}
		if v.rejected != 0 {
			t.Fatalf("rejected=%d, want 0", v.rejected)
		}
	})

	t.Run("one ulp before completion", func(t *testing.T) {
		m, v, done := mk()
		at := math.Nextafter(done, 0)
		_, err := m.ServeTenant("t0", at, device.Request{LBN: 8, Sectors: 8})
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("arrival before completion err=%v, want ErrRejected", err)
		}
		if v.rejected != 1 {
			t.Fatalf("rejected=%d, want 1", v.rejected)
		}
		// The window frees at the boundary itself.
		if _, err := m.ServeTenant("t0", done, device.Request{LBN: 8, Sectors: 8}); err != nil {
			t.Fatalf("retry at completion instant rejected: %v", err)
		}
	})
}
