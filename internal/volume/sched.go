package volume

import (
	"traxtents/internal/device/sched"
)

// The tenant-aware tier schedulers plug into sched.Queue but read
// per-request tenant metadata the Pending record does not carry: the
// Manager mirrors the tier's sequence numbers (shard.nextSeq) and
// appends one tag per submission, so Pick can index seqTag/seqDeadline
// by cands[i].Seq. Both break ties by arrival order (strict <, first
// candidate wins), keeping runs bit-reproducible.

// fairShare is start-time fair queueing (SFQ) across tenants: each
// submission carries a start tag S = max(v, tenant.lastFinish) and
// advances the tenant's finish tag by sectors/weight; dispatch picks
// the smallest start tag and advances the shard's virtual time v to
// it. Backlogged tenants therefore share a shard's service in
// proportion to their weights, regardless of how bursty each one is.
type fairShare struct {
	sh *shard
}

func (f *fairShare) Name() string { return tierFair }

func (f *fairShare) Pick(cands []sched.Pending, head int64) int {
	best, bestTag := 0, f.sh.seqTag[cands[0].Seq]
	for i := 1; i < len(cands); i++ {
		if tag := f.sh.seqTag[cands[i].Seq]; tag < bestTag {
			best, bestTag = i, tag
		}
	}
	if bestTag > f.sh.vtime {
		f.sh.vtime = bestTag
	}
	return best
}

// edf is earliest-deadline-first: each submission's deadline is its
// release instant plus the tenant's deadline budget, and dispatch
// picks the most urgent candidate.
type edf struct {
	sh *shard
}

func (e *edf) Name() string { return tierEDF }

func (e *edf) Pick(cands []sched.Pending, head int64) int {
	best, bestD := 0, e.sh.seqDeadline[cands[0].Seq]
	for i := 1; i < len(cands); i++ {
		if d := e.sh.seqDeadline[cands[i].Seq]; d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
