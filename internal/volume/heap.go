package volume

import "cmp"

// heldHeap orders shaped requests by (release, arrival), the order the
// Manager re-injects them into the shard tiers. It implements
// container/heap (the deferral path tolerates the interface boxing;
// the unshaped fast path never touches it).
type heldHeap []heldReq

func (h heldHeap) Len() int { return len(h) }
func (h heldHeap) Less(i, j int) bool {
	if h[i].release != h[j].release {
		return h[i].release < h[j].release
	}
	return h[i].order < h[j].order
}
func (h heldHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *heldHeap) Push(x any) { *h = append(*h, x.(heldReq)) }

func (h *heldHeap) Pop() any {
	old := *h
	n := len(old) - 1
	x := old[n]
	*h = old[:n]
	return x
}

// heapPush and heapPop are allocation-free min-heap helpers for the
// scalar heaps (free extent indices, in-flight completion times).

func heapPush[T cmp.Ordered](h *[]T, x T) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func heapPop[T cmp.Ordered](h *[]T) T {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && s[l] < s[least] {
			least = l
		}
		if r < n && s[r] < s[least] {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}
