package volume

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"traxtents/internal/device"
	"traxtents/internal/device/event"
	"traxtents/internal/device/sched"
	"traxtents/internal/disk/mech"
	"traxtents/internal/stats"
)

// Tier names accepted by WithTier, beyond the per-spindle policies that
// sched.ByName knows.
const (
	tierFCFS = "fcfs"
	tierFair = "fair"
	tierEDF  = "edf"
)

// ErrRejected is wrapped by every admission-control rejection, so
// callers can tell "denied by policy" from request or tenant errors
// with errors.Is.
var ErrRejected = errors.New("admission rejected")

// TenantLimit bounds one tenant's admission. The zero value admits
// nothing (a zero-rate token bucket: every request is rejected); leave
// a volume's limit unset to admit everything.
//
// Each bucket is active when its rate or burst is non-zero. An active
// request bucket defaults to a burst of 1 request; an active bandwidth
// bucket defaults to one second's refill. A request costing more than
// a bucket's whole burst can never be admitted and is rejected
// outright.
type TenantLimit struct {
	// IOPS is the request-bucket refill rate, admitted requests per
	// second of virtual time.
	IOPS float64
	// BurstRequests is the request-bucket capacity.
	BurstRequests float64
	// SectorsPerSec is the bandwidth-bucket refill rate.
	SectorsPerSec float64
	// BurstSectors is the bandwidth-bucket capacity.
	BurstSectors float64
	// MaxInFlight caps admitted-but-incomplete requests (a queue-depth
	// cap). Exceeding it always rejects, never defers.
	MaxInFlight int
	// Defer shapes instead of policing: a request that would exhaust a
	// bucket is admitted but released to the scheduler tier only when
	// its tokens have refilled (deterministically, in arrival order).
	// Requests that could never accumulate tokens are still rejected.
	Defer bool
}

// Extent is one placement unit of a volume: a whole traxtent (or
// fixed-size chunk) of a single shard.
type Extent struct {
	Shard   int   // shard index within the Manager
	Index   int   // extent index within the shard's table
	LBN     int64 // start LBN on the shard
	Sectors int64
}

// span is one shard-contiguous piece of a volume request.
type span struct {
	sh      *shard
	lbn     int64
	sectors int
}

// shard is one backing device plus its scheduler tier and extent table.
type shard struct {
	idx  int
	dev  device.Device
	tier *sched.Queue

	bounds    []int64 // ascending extent boundaries, bounds[0] = 0
	freeExt   []int   // min-heap of returned extent indices
	nextFresh int     // lowest never-allocated extent index

	nextSeq int         // mirror of the tier's submission sequence
	routes  map[int]int // tier seq -> join index (batch path only)

	// Tenant metadata for the tier scheduler, indexed by tier sequence
	// number (only populated for the fair and edf tiers).
	seqTag      []float64
	seqDeadline []float64
	vtime       float64 // SFQ virtual time
}

// extents returns the number of extents in the shard's table.
func (s *shard) extents() int { return len(s.bounds) - 1 }

// takeExtent allocates the lowest free extent index, if any.
func (s *shard) takeExtent() (int, bool) {
	if len(s.freeExt) > 0 {
		return heapPop(&s.freeExt), true
	}
	if s.nextFresh < s.extents() {
		s.nextFresh++
		return s.nextFresh - 1, true
	}
	return 0, false
}

// giveExtent returns an extent index to the free pool.
func (s *shard) giveExtent(i int) { heapPush(&s.freeExt, i) }

// Volume is one tenant's logical LBN space.
type Volume struct {
	m        *Manager
	name     string
	weight   float64 // fair-share weight
	deadline float64 // EDF deadline, ms after release

	exts     []Extent
	bounds   []int64 // cumulative volume-LBN extent boundaries
	capacity int64

	// Admission state.
	limit       *TenantLimit
	denyAll     bool
	reqActive   bool
	secActive   bool
	reqRate     float64 // tokens per ms
	secRate     float64
	reqBurst    float64
	secBurst    float64
	reqTokens   float64
	secTokens   float64
	bucketAt    float64 // buckets last refilled to this instant
	lastRelease float64

	unresolved int       // admitted requests whose completion has not folded
	doneHeap   []float64 // completion times, for the MaxInFlight window

	// Accounting.
	served          int
	rejected        int
	deferred        int
	sumResp         float64
	maxResp         float64
	q50, q99, q9999 *stats.Quantile
	lastFinish      []float64 // per-shard SFQ finish tag
	lastDone        float64
}

// Name returns the tenant name.
func (v *Volume) Name() string { return v.name }

// Capacity returns the volume's addressable LBNs (the requested size
// rounded up to whole extents).
func (v *Volume) Capacity() int64 { return v.capacity }

// ExtentTable returns a copy of the volume's placement.
func (v *Volume) ExtentTable() []Extent { return append([]Extent(nil), v.exts...) }

// setLimit resolves a TenantLimit's defaults onto the volume and fills
// the buckets.
func (v *Volume) setLimit(l TenantLimit) {
	lim := l
	v.limit = &lim
	v.denyAll = l == TenantLimit{}
	v.reqActive = l.IOPS > 0 || l.BurstRequests > 0
	v.secActive = l.SectorsPerSec > 0 || l.BurstSectors > 0
	v.reqRate = l.IOPS / 1000
	v.secRate = l.SectorsPerSec / 1000
	v.reqBurst = l.BurstRequests
	if v.reqActive && v.reqBurst <= 0 {
		v.reqBurst = 1
	}
	v.secBurst = l.BurstSectors
	if v.secActive && v.secBurst <= 0 {
		v.secBurst = l.SectorsPerSec
	}
	v.reqTokens, v.secTokens = v.reqBurst, v.secBurst
}

// admit applies the volume's limit at the given host time, returning
// the instant the request is released to the scheduler tier (at, when
// not shaped). A rejection leaves every clock untouched.
func (v *Volume) admit(at float64, sectors int) (float64, error) {
	if v.limit == nil {
		return at, nil
	}
	reject := func(reason string) (float64, error) {
		v.rejected++
		return 0, fmt.Errorf("volume: tenant %q: %w: %s", v.name, ErrRejected, reason)
	}
	if v.denyAll {
		return reject("zero-rate limit admits nothing")
	}
	if max := v.limit.MaxInFlight; max > 0 {
		for len(v.doneHeap) > 0 && v.doneHeap[0] <= at {
			heapPop(&v.doneHeap)
		}
		if v.unresolved+len(v.doneHeap) >= max {
			return reject(fmt.Sprintf("%d requests in flight", max))
		}
	}
	cost := float64(sectors)
	if v.secActive && cost > v.secBurst {
		return reject("request larger than the bandwidth burst")
	}
	t0 := math.Max(at, v.lastRelease)
	v.refill(t0)
	wait := 0.0
	if v.reqActive && v.reqTokens < 1 {
		if v.reqRate <= 0 || !v.limit.Defer {
			return reject("request tokens exhausted")
		}
		wait = (1 - v.reqTokens) / v.reqRate
	}
	if v.secActive && v.secTokens < cost {
		if v.secRate <= 0 || !v.limit.Defer {
			return reject("bandwidth tokens exhausted")
		}
		if w := (cost - v.secTokens) / v.secRate; w > wait {
			wait = w
		}
	}
	release := t0 + wait
	v.refill(release)
	if v.reqActive {
		v.reqTokens--
	}
	if v.secActive {
		v.secTokens -= cost
	}
	v.lastRelease = release
	if release > at {
		v.deferred++
	}
	return release, nil
}

// refill tops the buckets up to instant t.
func (v *Volume) refill(t float64) {
	if t <= v.bucketAt {
		return
	}
	dt := t - v.bucketAt
	v.bucketAt = t
	if v.reqActive {
		v.reqTokens = math.Min(v.reqBurst, v.reqTokens+v.reqRate*dt)
	}
	if v.secActive {
		v.secTokens = math.Min(v.secBurst, v.secTokens+v.secRate*dt)
	}
}

// join assembles one volume request's spans back into a single Result.
type join struct {
	vol       *Volume
	res       device.Result
	remaining int
	started   bool
	// failed marks a join whose batch died mid-route (a shard tier
	// rejected a span): spans already in flight still fold into it, but
	// it never accounts and Drain does not demand its missing spans.
	failed bool
}

// admissionSnapshot captures the tenant state admit mutates, so a
// mid-batch routing failure can put it back per the ErrRejected
// contract: a request the volume server could not place consumes no
// tokens and holds no in-flight slot.
type admissionSnapshot struct {
	reqTokens   float64
	secTokens   float64
	bucketAt    float64
	lastRelease float64
	deferred    int
}

func (v *Volume) admitSnap() admissionSnapshot {
	return admissionSnapshot{
		reqTokens:   v.reqTokens,
		secTokens:   v.secTokens,
		bucketAt:    v.bucketAt,
		lastRelease: v.lastRelease,
		deferred:    v.deferred,
	}
}

func (v *Volume) restore(s admissionSnapshot) {
	v.reqTokens = s.reqTokens
	v.secTokens = s.secTokens
	v.bucketAt = s.bucketAt
	v.lastRelease = s.lastRelease
	v.deferred = s.deferred
}

// heldReq is an admitted-but-shaped request waiting for its release
// instant.
type heldReq struct {
	release float64
	order   int
	vol     *Volume
	issue   float64
	req     device.Request
}

// config collects constructor options.
type config struct {
	tier          string
	depth         int
	extentSectors int64
	deadlineMs    float64
}

// Option configures a Manager.
type Option func(*config)

// WithTier selects the scheduler-tier policy above each shard: "fcfs"
// (the default — with depth 1 it is a transparent passthrough), "fair"
// (start-time fair queueing across tenants, weighted by sectors), "edf"
// (earliest deadline first), or any per-spindle policy sched.ByName
// accepts ("sstf", "clook", "traxtent").
func WithTier(name string) Option { return func(c *config) { c.tier = name } }

// WithTierDepth sets the tier's queue depth (reordering window). The
// default is 1.
func WithTierDepth(n int) Option { return func(c *config) { c.depth = n } }

// WithExtentSectors switches placement from the shards' own traxtent
// boundaries to a fixed extent size — the unaligned layout, whose
// extents straddle track boundaries. Shard capacity beyond the last
// whole extent is not used.
func WithExtentSectors(n int64) Option { return func(c *config) { c.extentSectors = n } }

// WithDefaultDeadline sets the EDF deadline (ms past a request's
// release) for volumes that do not set their own. The default is 50 ms.
func WithDefaultDeadline(ms float64) Option { return func(c *config) { c.deadlineMs = ms } }

// VolumeOption configures one volume at AddVolume time.
type VolumeOption func(*Volume)

// WithLimit sets the tenant's admission limit.
func WithLimit(l TenantLimit) VolumeOption { return func(v *Volume) { v.setLimit(l) } }

// WithWeight sets the tenant's fair-share weight (default 1).
func WithWeight(w float64) VolumeOption { return func(v *Volume) { v.weight = w } }

// WithDeadline sets the tenant's EDF deadline in ms (default: the
// Manager's).
func WithDeadline(ms float64) VolumeOption { return func(v *Volume) { v.deadline = ms } }

// Manager is the multi-tenant volume server: it owns the shards, the
// per-shard scheduler tiers, the tenant volumes, and the admission and
// accounting state. Like every layer of the stack it is deterministic
// and single-goroutine, with issue times non-decreasing across
// Submit/ServeTenant calls.
type Manager struct {
	shards     []*shard
	cfg        config
	sectorSize int
	rotation   float64 // common shard rotation period, 0 when mixed

	vols  map[string]*Volume
	order []*Volume

	joins     []join
	held      heldHeap
	heldOrder int

	lastIssue float64
	lastDone  float64

	spanBuf []span

	// Event-core citizenship: the shard tiers are one fleet on one
	// discrete-event core, so an advance commits dispatch decisions
	// across all shards in global (time, seq) order — deterministic
	// under exact float64 ties — instead of shard by shard. Commits
	// only mark shards dirty; completions fold in ascending shard
	// order afterwards (fold), which keeps the P² accounting stream
	// bit-identical to the legacy shard-major join.
	core  *event.Core
	fleet *event.Queues
	dirty []bool

	// Prebound fold state (zero-alloc ConsumeCompleted loop).
	foldCur *shard
	foldErr error
	foldFn  func(*sched.Completion)

	// Aggregate accounting across tenants.
	served          int
	sumResp         float64
	maxResp         float64
	q50, q99, q9999 *stats.Quantile
}

// New builds a Manager over the given shard devices (striped arrays,
// composed stacks, or bare disks). All shards must share a sector
// size; with the default traxtent-aligned placement each shard must be
// a device.BoundaryProvider.
func New(shards []device.Device, opts ...Option) (*Manager, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("volume: no shards")
	}
	cfg := config{tier: tierFCFS, depth: 1, deadlineMs: 50}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.depth < 1 {
		return nil, fmt.Errorf("volume: tier depth %d", cfg.depth)
	}
	if cfg.extentSectors < 0 {
		return nil, fmt.Errorf("volume: extent size %d", cfg.extentSectors)
	}
	m := &Manager{
		cfg:        cfg,
		sectorSize: shards[0].SectorSize(),
		vols:       make(map[string]*Volume),
		q50:        stats.NewQuantile(0.50),
		q99:        stats.NewQuantile(0.99),
		q9999:      stats.NewQuantile(0.9999),
	}
	for i, d := range shards {
		if d == nil {
			return nil, fmt.Errorf("volume: shard %d is nil", i)
		}
		if d.SectorSize() != m.sectorSize {
			return nil, fmt.Errorf("volume: shard %d sector size %d != %d", i, d.SectorSize(), m.sectorSize)
		}
		bounds, err := extentBounds(d, cfg.extentSectors)
		if err != nil {
			return nil, fmt.Errorf("volume: shard %d: %w", i, err)
		}
		sh := &shard{idx: i, dev: d, bounds: bounds, routes: make(map[int]int)}
		var s sched.Scheduler
		switch cfg.tier {
		case tierFair:
			s = &fairShare{sh: sh}
		case tierEDF:
			s = &edf{sh: sh}
		default:
			if s, err = sched.ByName(cfg.tier, d); err != nil {
				return nil, err
			}
		}
		if sh.tier, err = sched.New(d, sched.WithDepth(cfg.depth), sched.WithScheduler(s)); err != nil {
			return nil, err
		}
		m.shards = append(m.shards, sh)
	}
	m.rotation = commonRotation(shards)
	m.core = event.New()
	qs := make([]*sched.Queue, len(m.shards))
	for i, sh := range m.shards {
		qs[i] = sh.tier
	}
	m.fleet = event.NewQueues(m.core, qs, m.markDirty)
	m.dirty = make([]bool, len(m.shards))
	m.foldFn = m.foldOne
	return m, nil
}

// markDirty is the fleet's commit hook: a committed tier dispatch may
// have buffered completions, so the shard joins the next fold sweep.
func (m *Manager) markDirty(i int) error {
	m.dirty[i] = true
	return nil
}

// extentBounds builds a shard's extent table: its own traxtent
// boundaries, or a fixed grid when extentSectors is non-zero.
func extentBounds(d device.Device, extentSectors int64) ([]int64, error) {
	if extentSectors == 0 {
		bp, ok := d.(device.BoundaryProvider)
		if !ok {
			return nil, fmt.Errorf("device %T exposes no track boundaries; use WithExtentSectors", d)
		}
		b := bp.TrackBoundaries()
		if len(b) < 2 {
			return nil, fmt.Errorf("device has no usable track boundaries")
		}
		return b, nil
	}
	n := d.Capacity() / extentSectors
	if n == 0 {
		return nil, fmt.Errorf("extent size %d exceeds capacity %d", extentSectors, d.Capacity())
	}
	bounds := make([]int64, n+1)
	for i := range bounds {
		bounds[i] = int64(i) * extentSectors
	}
	return bounds, nil
}

// commonRotation returns the rotation period shared by every shard, or
// 0 when any shard differs or has none.
func commonRotation(shards []device.Device) float64 {
	period := 0.0
	for i, d := range shards {
		r, ok := d.(device.Rotational)
		if !ok {
			return 0
		}
		p := r.RotationPeriod()
		if i == 0 {
			period = p
		} else if p != period {
			return 0
		}
	}
	return period
}

// Shards returns the number of shard devices.
func (m *Manager) Shards() int { return len(m.shards) }

// SectorSize returns the shards' common sector size.
func (m *Manager) SectorSize() int { return m.sectorSize }

// Now returns the completion time of the last finished request.
func (m *Manager) Now() float64 { return m.lastDone }

// Tenants returns the tenant names in creation order.
func (m *Manager) Tenants() []string {
	names := make([]string, len(m.order))
	for i, v := range m.order {
		names[i] = v.name
	}
	return names
}

// Volume returns a tenant's volume.
func (m *Manager) Volume(name string) (*Volume, error) {
	v, ok := m.vols[name]
	if !ok {
		return nil, fmt.Errorf("volume: unknown tenant %q", name)
	}
	return v, nil
}

// place returns the home shard for a tenant's i-th extent: an FNV-1a
// hash of the tenant name and the extent ordinal, so placement is a
// pure function of (name, i, shard count) — stable under churn.
func (m *Manager) place(name string, i int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for j := 0; j < len(name); j++ {
		h ^= uint64(name[j])
		h *= prime64
	}
	for b := 0; b < 8; b++ {
		h ^= uint64(i>>(8*b)) & 0xff
		h *= prime64
	}
	return int(h % uint64(len(m.shards)))
}

// AddVolume creates a tenant volume of at least sizeSectors, placing
// whole extents hash-first with deterministic probing to the next
// shard when the home shard is full. Volumes may be added mid-run; the
// allocation itself never moves the clock.
func (m *Manager) AddVolume(name string, sizeSectors int64, opts ...VolumeOption) (*Volume, error) {
	if name == "" {
		return nil, fmt.Errorf("volume: empty tenant name")
	}
	if _, ok := m.vols[name]; ok {
		return nil, fmt.Errorf("volume: tenant %q exists", name)
	}
	if sizeSectors <= 0 {
		return nil, fmt.Errorf("volume: size %d sectors", sizeSectors)
	}
	v := &Volume{
		m:          m,
		name:       name,
		weight:     1,
		deadline:   m.cfg.deadlineMs,
		bucketAt:   m.lastIssue,
		q50:        stats.NewQuantile(0.50),
		q99:        stats.NewQuantile(0.99),
		q9999:      stats.NewQuantile(0.9999),
		lastFinish: make([]float64, len(m.shards)),
	}
	for _, o := range opts {
		o(v)
	}
	if v.weight <= 0 {
		return nil, fmt.Errorf("volume: tenant %q weight %g", name, v.weight)
	}
	for i := 0; v.capacity < sizeSectors; i++ {
		home := m.place(name, i)
		placed := false
		for probe := 0; probe < len(m.shards); probe++ {
			sh := m.shards[(home+probe)%len(m.shards)]
			ei, ok := sh.takeExtent()
			if !ok {
				continue
			}
			size := sh.bounds[ei+1] - sh.bounds[ei]
			v.exts = append(v.exts, Extent{Shard: sh.idx, Index: ei, LBN: sh.bounds[ei], Sectors: size})
			v.capacity += size
			placed = true
			break
		}
		if !placed {
			for _, e := range v.exts { // roll back
				m.shards[e.Shard].giveExtent(e.Index)
			}
			return nil, fmt.Errorf("volume: tenant %q: no free extents for %d sectors", name, sizeSectors)
		}
	}
	v.bounds = make([]int64, len(v.exts)+1)
	for i, e := range v.exts {
		v.bounds[i+1] = v.bounds[i] + e.Sectors
	}
	m.vols[name] = v
	m.order = append(m.order, v)
	return v, nil
}

// RemoveVolume deletes a tenant and returns its extents to the free
// pool (lowest-index-first reallocation keeps churn deterministic).
// It fails while the tenant has admitted requests outstanding.
func (m *Manager) RemoveVolume(name string) error {
	v, ok := m.vols[name]
	if !ok {
		return fmt.Errorf("volume: unknown tenant %q", name)
	}
	if v.unresolved > 0 {
		return fmt.Errorf("volume: tenant %q has %d requests in flight", name, v.unresolved)
	}
	for _, e := range v.exts {
		m.shards[e.Shard].giveExtent(e.Index)
	}
	delete(m.vols, name)
	for i, o := range m.order {
		if o == v {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// split maps a volume request onto shard-contiguous spans, merging
// adjacent extents that happen to be contiguous on the same shard (the
// passthrough identity mapping always merges to one span). The
// returned slice is valid until the next split.
func (m *Manager) split(v *Volume, req device.Request) []span {
	spans := m.spanBuf[:0]
	lbn := req.LBN
	left := int64(req.Sectors)
	ei := sort.Search(len(v.bounds), func(i int) bool { return v.bounds[i] > lbn }) - 1
	for left > 0 {
		e := v.exts[ei]
		off := lbn - v.bounds[ei]
		n := e.Sectors - off
		if n > left {
			n = left
		}
		dev := e.LBN + off
		if k := len(spans) - 1; k >= 0 && spans[k].sh.idx == e.Shard && spans[k].lbn+int64(spans[k].sectors) == dev {
			spans[k].sectors += int(n)
		} else {
			spans = append(spans, span{sh: m.shards[e.Shard], lbn: dev, sectors: int(n)})
		}
		lbn += n
		left -= n
		ei++
	}
	m.spanBuf = spans
	return spans
}

// tag records the tenant metadata the tier scheduler will read for the
// next submission on sh, advancing the tenant's SFQ finish tag.
func (m *Manager) tag(sh *shard, v *Volume, release float64, sectors int) {
	switch m.cfg.tier {
	case tierFair:
		s := math.Max(sh.vtime, v.lastFinish[sh.idx])
		v.lastFinish[sh.idx] = s + float64(sectors)/v.weight
		sh.seqTag = append(sh.seqTag, s)
	case tierEDF:
		sh.seqDeadline = append(sh.seqDeadline, release+v.deadline)
	}
}

// Submit enqueues one tenant request issued at the given host time
// (non-decreasing across calls). The request is validated and admitted
// immediately — ErrRejected-wrapped errors leave all state untouched —
// then split into spans and handed to the shard tiers (or held until
// its shaped release). Completions accumulate internally; Drain
// resolves them.
func (m *Manager) Submit(name string, at float64, req device.Request) error {
	v, ok := m.vols[name]
	if !ok {
		return fmt.Errorf("volume: unknown tenant %q", name)
	}
	if err := device.CheckBounds(req.LBN, req.Sectors, v.capacity); err != nil {
		return err
	}
	if at < m.lastIssue {
		return fmt.Errorf("volume: issue time %g before previous %g", at, m.lastIssue)
	}
	if err := m.advanceTo(at); err != nil {
		return err
	}
	snap := v.admitSnap()
	release, err := v.admit(at, req.Sectors)
	if err != nil {
		return err
	}
	m.lastIssue = at
	v.unresolved++
	if release > at {
		heap.Push(&m.held, heldReq{release: release, order: m.heldOrder, vol: v, issue: at, req: req})
		m.heldOrder++
		return nil
	}
	if err := m.route(v, at, release, req); err != nil {
		// Mid-batch failure (a shard tier rejected a span — a fault
		// injector under the volume, say): route already released the
		// in-flight slot and marked the join failed; restoring the
		// pre-admit snapshot returns the tokens, so the failed request
		// leaves the buckets, counts, and quantile state exactly as a
		// clean ErrRejected would.
		v.restore(snap)
		return err
	}
	return nil
}

// route splits an admitted request and submits its spans to the shard
// tiers at the release instant, registering a join for reassembly.
//
// A span the tier rejects mid-batch cannot be unsubmitted from the
// spans before it, so route fails softly: the join is marked failed
// (earlier spans still fold into it, but it never accounts), the
// tenant's in-flight count drops, and the failed span's bookkeeping is
// undone — but only when the tier did not consume its submission
// sequence number, which a sticky dispatch failure does.
func (m *Manager) route(v *Volume, issue, release float64, req device.Request) error {
	ji := len(m.joins)
	m.joins = append(m.joins, join{vol: v, res: device.Result{Req: req, Issue: issue}})
	spans := m.split(v, req)
	m.joins[ji].remaining = len(spans)
	for si, sp := range spans {
		sub := device.Request{LBN: sp.lbn, Sectors: sp.sectors, Write: req.Write, FUA: req.FUA}
		prevFinish := 0.0
		if m.cfg.tier == tierFair {
			prevFinish = v.lastFinish[sp.sh.idx]
		}
		before := sp.sh.tier.Stats().Submitted
		m.tag(sp.sh, v, release, sp.sectors)
		sp.sh.routes[sp.sh.nextSeq] = ji
		sp.sh.nextSeq++
		if err := sp.sh.tier.Submit(release, sub); err != nil {
			j := &m.joins[ji]
			j.failed = true
			j.remaining -= len(spans) - si // this span and the rest never complete
			v.unresolved--
			if sp.sh.tier.Stats().Submitted == before {
				delete(sp.sh.routes, sp.sh.nextSeq-1)
				sp.sh.nextSeq--
				m.untag(sp.sh, v, prevFinish)
			}
			return err
		}
		// The tier's Submit may have committed earlier decisions
		// internally, and its next decision instant moved: re-sweep the
		// shard on the next fold and reschedule its event.
		m.dirty[sp.sh.idx] = true
		if err := m.fleet.Touch(sp.sh.idx); err != nil {
			return err
		}
	}
	return nil
}

// untag reverses one tag() call for a span whose tier submission did
// not consume a sequence number, realigning the tenant-metadata
// mirrors with the tier's counter.
func (m *Manager) untag(sh *shard, v *Volume, prevFinish float64) {
	switch m.cfg.tier {
	case tierFair:
		sh.seqTag = sh.seqTag[:len(sh.seqTag)-1]
		v.lastFinish[sh.idx] = prevFinish
	case tierEDF:
		sh.seqDeadline = sh.seqDeadline[:len(sh.seqDeadline)-1]
	}
}

// advanceTo releases every held request due by at (in release order,
// ties by arrival), commits tier decisions before at — as events on
// the shared core, in global (time, seq) order across all shards —
// and folds the resulting completions.
func (m *Manager) advanceTo(at float64) error {
	for len(m.held) > 0 && m.held[0].release <= at {
		h := heap.Pop(&m.held).(heldReq)
		if err := m.route(h.vol, h.issue, h.release, h.req); err != nil {
			return err
		}
	}
	if err := m.fleet.AdvanceTo(at); err != nil {
		return err
	}
	return m.fold()
}

// fold routes finished tier completions back to their joins and
// accounts every fully reassembled request. Only shards marked dirty
// by a commit (or a direct tier submit) are swept, in ascending shard
// order — the same accounting order as a sweep of every shard, since
// clean shards have nothing buffered. A completion no join owns is an
// accounting fault, not a silently misattributed request.
func (m *Manager) fold() error {
	for i, sh := range m.shards {
		if !m.dirty[i] {
			continue
		}
		m.dirty[i] = false
		m.foldCur = sh
		sh.tier.ConsumeCompleted(m.foldFn)
		if err := m.foldErr; err != nil {
			m.foldErr = nil
			return err
		}
	}
	return nil
}

// foldOne settles one tier completion (prebound as m.foldFn so the
// steady-state fold loop allocates nothing).
func (m *Manager) foldOne(c *sched.Completion) {
	if m.foldErr != nil {
		return
	}
	sh := m.foldCur
	ji, ok := sh.routes[c.Seq]
	if !ok {
		m.foldErr = fmt.Errorf("volume: shard %d completion %d (%+v) has no owner", sh.idx, c.Seq, c.Res.Req)
		return
	}
	delete(sh.routes, c.Seq)
	j := &m.joins[ji]
	accumulate(&j.res, &j.started, c.Res)
	j.remaining--
	if j.remaining == 0 && !j.failed {
		j.vol.unresolved--
		m.account(j.vol, j.res)
	}
}

// accumulate merges one span result into a join's aggregate. A single
// span keeps the child's full record (including the media-phase
// breakdown); merged spans drop Timing, like a striped array's joins.
func accumulate(dst *device.Result, started *bool, r device.Result) {
	if !*started {
		req, issue := dst.Req, dst.Issue
		*dst = r
		dst.Req, dst.Issue = req, issue
		*started = true
		return
	}
	dst.Timing = mech.Timing{}
	if r.Start < dst.Start {
		dst.Start = r.Start
	}
	if r.MediaEnd > dst.MediaEnd {
		dst.MediaEnd = r.MediaEnd
	}
	if r.Done > dst.Done {
		dst.Done = r.Done
	}
	dst.BusTime += r.BusTime
	dst.Prefetched += r.Prefetched
	dst.CacheHit = dst.CacheHit && r.CacheHit
}

// account records one reassembled completion against its tenant and
// the aggregate.
func (m *Manager) account(v *Volume, res device.Result) {
	resp := res.Response()
	v.served++
	v.sumResp += resp
	if resp > v.maxResp {
		v.maxResp = resp
	}
	v.q50.Add(resp)
	v.q99.Add(resp)
	v.q9999.Add(resp)
	if res.Done > v.lastDone {
		v.lastDone = res.Done
	}
	if v.limit != nil && v.limit.MaxInFlight > 0 {
		heapPush(&v.doneHeap, res.Done)
	}
	m.served++
	m.sumResp += resp
	if resp > m.maxResp {
		m.maxResp = resp
	}
	m.q50.Add(resp)
	m.q99.Add(resp)
	m.q9999.Add(resp)
	if res.Done > m.lastDone {
		m.lastDone = res.Done
	}
}

// Drain releases every held request, commits every remaining tier
// decision on the event core, and folds all remaining completions into
// the accounting.
func (m *Manager) Drain() error {
	for len(m.held) > 0 {
		h := heap.Pop(&m.held).(heldReq)
		if err := m.route(h.vol, h.issue, h.release, h.req); err != nil {
			return err
		}
	}
	// One clock: every shard's decisions commit in global (time, seq)
	// order. A sticky tier error surfaces identically from the Flush
	// safety net below, in shard order like the legacy drain.
	_ = m.fleet.Drain()
	for i, sh := range m.shards {
		if err := sh.tier.Flush(); err != nil {
			return err
		}
		m.dirty[i] = true // barrier: sweep every shard in the fold
	}
	if err := m.fold(); err != nil {
		return err
	}
	// Every join must have reassembled: a tier that dropped a span — a
	// child failure mid-drain, say — must surface as an error naming
	// the dropped request, not vanish from the accounting. Failed joins
	// are the exception: their missing spans were never submitted (the
	// rejection already surfaced to the submitter).
	for i := range m.joins {
		if j := &m.joins[i]; j.remaining != 0 && !j.failed {
			return fmt.Errorf("volume: request %+v for %q still missing %d spans after drain",
				j.res.Req, j.vol.name, j.remaining)
		}
	}
	m.joins = m.joins[:0]
	return nil
}

// ServeTenant submits one request and resolves it synchronously,
// returning its reassembled result — a barrier, like sched.Queue.Serve:
// any outstanding batch work is drained first. Sequential consumers
// (and the per-tenant device view) use it; concurrent workloads should
// Submit and Drain. The steady-state path does not allocate.
func (m *Manager) ServeTenant(name string, at float64, req device.Request) (device.Result, error) {
	if len(m.held) > 0 || len(m.joins) > 0 {
		if err := m.Drain(); err != nil {
			return device.Result{}, err
		}
	}
	v, ok := m.vols[name]
	if !ok {
		return device.Result{}, fmt.Errorf("volume: unknown tenant %q", name)
	}
	if err := device.CheckBounds(req.LBN, req.Sectors, v.capacity); err != nil {
		return device.Result{}, err
	}
	if at < m.lastIssue {
		return device.Result{}, fmt.Errorf("volume: issue time %g before previous %g", at, m.lastIssue)
	}
	snap := v.admitSnap()
	release, err := v.admit(at, req.Sectors)
	if err != nil {
		return device.Result{}, err
	}
	m.lastIssue = at
	res := device.Result{Req: req, Issue: at}
	started := false
	for _, sp := range m.split(v, req) {
		sub := device.Request{LBN: sp.lbn, Sectors: sp.sectors, Write: req.Write, FUA: req.FUA}
		prevFinish := 0.0
		if m.cfg.tier == tierFair {
			prevFinish = v.lastFinish[sp.sh.idx]
		}
		before := sp.sh.tier.Stats().Submitted
		m.tag(sp.sh, v, release, sp.sectors)
		sp.sh.nextSeq++
		r, err := sp.sh.tier.Serve(release, sub)
		if err != nil {
			// Same contract as the batch path: the failed request holds
			// no tokens, and the mirrors realign when the tier did not
			// consume the sequence number.
			if sp.sh.tier.Stats().Submitted == before {
				sp.sh.nextSeq--
				m.untag(sp.sh, v, prevFinish)
			}
			v.restore(snap)
			return device.Result{}, err
		}
		accumulate(&res, &started, r)
	}
	m.account(v, res)
	return res, nil
}

// VolumeStats is one tenant's accounting snapshot (or the cross-tenant
// aggregate, Tenant "*"). Quantiles are streaming P² estimates.
type VolumeStats struct {
	Tenant   string
	Capacity int64 // sectors
	Extents  int
	Requests int // completed
	Rejected int
	Deferred int
	InFlight int // admitted, not yet complete
	MeanMs   float64
	MaxMs    float64
	P50Ms    float64
	P99Ms    float64
	P9999Ms  float64
}

// snapshot builds the stats record for one volume.
func (v *Volume) snapshot() VolumeStats {
	s := VolumeStats{
		Tenant:   v.name,
		Capacity: v.capacity,
		Extents:  len(v.exts),
		Requests: v.served,
		Rejected: v.rejected,
		Deferred: v.deferred,
		InFlight: v.unresolved,
		MaxMs:    v.maxResp,
		P50Ms:    v.q50.Value(),
		P99Ms:    v.q99.Value(),
		P9999Ms:  v.q9999.Value(),
	}
	if v.served > 0 {
		s.MeanMs = v.sumResp / float64(v.served)
	}
	return s
}

// VolumeStats returns one tenant's accounting snapshot.
func (m *Manager) VolumeStats(name string) (VolumeStats, error) {
	v, ok := m.vols[name]
	if !ok {
		return VolumeStats{}, fmt.Errorf("volume: unknown tenant %q", name)
	}
	return v.snapshot(), nil
}

// Stats returns every tenant's snapshot in creation order.
func (m *Manager) Stats() []VolumeStats {
	out := make([]VolumeStats, len(m.order))
	for i, v := range m.order {
		out[i] = v.snapshot()
	}
	return out
}

// Aggregate returns the cross-tenant snapshot (Tenant "*"): the
// aggregate quantiles are streamed over every completion in service
// order, not an average of the per-tenant estimates.
func (m *Manager) Aggregate() VolumeStats {
	s := VolumeStats{
		Tenant:   "*",
		Requests: m.served,
		MaxMs:    m.maxResp,
		P50Ms:    m.q50.Value(),
		P99Ms:    m.q99.Value(),
		P9999Ms:  m.q9999.Value(),
	}
	for _, v := range m.order {
		s.Capacity += v.capacity
		s.Extents += len(v.exts)
		s.Rejected += v.rejected
		s.Deferred += v.deferred
		s.InFlight += v.unresolved
	}
	if m.served > 0 {
		s.MeanMs = m.sumResp / float64(m.served)
	}
	return s
}
