package volume_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"traxtents/internal/device"
	"traxtents/internal/device/devtest"
	"traxtents/internal/device/stack"
	"traxtents/internal/disk/model"
	"traxtents/internal/disk/sim"
	"traxtents/internal/volume"
)

// newSim builds a fresh simulated disk of the smallest Table 1 model.
func newSim(t testing.TB, seed int64) *sim.Disk {
	t.Helper()
	m := model.MustGet("HP-C2247")
	cfg := m.DefaultConfig()
	cfg.Seed = seed
	d, err := m.NewDisk(cfg)
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	return d
}

// newManager builds a manager over n fresh sim shards with a volume of
// the whole first shard's capacity for tenant "t0" unless told
// otherwise by the caller (which then adds its own volumes).
func newManager(t testing.TB, nshards int, opts ...volume.Option) *volume.Manager {
	t.Helper()
	shards := make([]device.Device, nshards)
	for i := range shards {
		shards[i] = newSim(t, int64(i+1))
	}
	m, err := volume.New(shards, opts...)
	if err != nil {
		t.Fatalf("volume.New: %v", err)
	}
	return m
}

func addVol(t testing.TB, m *volume.Manager, name string, sectors int64, opts ...volume.VolumeOption) *volume.Volume {
	t.Helper()
	v, err := m.AddVolume(name, sectors, opts...)
	if err != nil {
		t.Fatalf("AddVolume(%s, %d): %v", name, sectors, err)
	}
	return v
}

// pinStream is the seeded request stream both sides of the passthrough
// differential serve: mixed reads and writes, occasional FUA, and an
// issue-time walk that rides, lags, and overtakes completions.
func pinStream(t *testing.T, d device.Device, n int, seed int64) []device.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	capacity := d.Capacity()
	at := 0.0
	out := make([]device.Result, 0, n)
	for i := 0; i < n; i++ {
		sectors := 1 + rng.Intn(64)
		req := device.Request{
			LBN:     rng.Int63n(capacity - int64(sectors)),
			Sectors: sectors,
			Write:   rng.Intn(4) == 0,
			FUA:     rng.Intn(16) == 0,
		}
		res, err := d.Serve(at, req)
		if err != nil {
			t.Fatalf("Serve %d (%+v): %v", i, req, err)
		}
		out = append(out, res)
		switch rng.Intn(3) {
		case 0:
			at = res.Done
		case 1:
			at += rng.Float64() * (res.Done - at)
		case 2:
			at = res.Done + rng.Float64()*3
		}
	}
	return out
}

// TestPassthroughPin: a single-tenant Manager with no limits and the
// default tier (depth-1 FCFS) over a passthrough stack must serve a
// seeded stream bit-identical to the bare stack — the same transparency
// discipline the queue, cache, and array layers are pinned to.
func TestPassthroughPin(t *testing.T) {
	bareStack, err := stack.Config{}.Build(newSim(t, 7))
	if err != nil {
		t.Fatalf("stack: %v", err)
	}
	shardStack, err := stack.Config{}.Build(newSim(t, 7))
	if err != nil {
		t.Fatalf("stack: %v", err)
	}
	m, err := volume.New([]device.Device{shardStack})
	if err != nil {
		t.Fatalf("volume.New: %v", err)
	}
	addVol(t, m, "t0", shardStack.Capacity())
	view, err := m.View("t0")
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	if view.Capacity() != bareStack.Capacity() {
		t.Fatalf("volume capacity %d != device capacity %d", view.Capacity(), bareStack.Capacity())
	}

	const n = 400
	want := pinStream(t, bareStack, n, 3)
	got := pinStream(t, view, n, 3)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("result %d diverged:\nmanager: %+v\nbare:    %+v", i, got[i], want[i])
		}
	}
}

// TestSubmitMatchesServe: under the passthrough tier the batch path
// (Submit + Drain) accounts a fixed arrival schedule identically to the
// synchronous barrier path.
func TestSubmitMatchesServe(t *testing.T) {
	run := func(batch bool) []volume.VolumeStats {
		m := newManager(t, 1)
		capacity := newSim(t, 1).Capacity()
		addVol(t, m, "a", capacity/2)
		addVol(t, m, "b", capacity/4)
		rng := rand.New(rand.NewSource(17))
		at := 0.0
		for i := 0; i < 200; i++ {
			name := "a"
			if rng.Intn(2) == 0 {
				name = "b"
			}
			v, err := m.Volume(name)
			if err != nil {
				t.Fatalf("Volume: %v", err)
			}
			sectors := 1 + rng.Intn(32)
			req := device.Request{
				LBN:     rng.Int63n(v.Capacity() - int64(sectors)),
				Sectors: sectors,
				Write:   rng.Intn(4) == 0,
			}
			if batch {
				if err := m.Submit(name, at, req); err != nil {
					t.Fatalf("Submit %d: %v", i, err)
				}
			} else if _, err := m.ServeTenant(name, at, req); err != nil {
				t.Fatalf("ServeTenant %d: %v", i, err)
			}
			at += rng.Float64() * 8
		}
		if err := m.Drain(); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		return append(m.Stats(), m.Aggregate())
	}
	sync, batch := run(false), run(true)
	if !reflect.DeepEqual(sync, batch) {
		t.Fatalf("batch accounting diverged:\nserve:  %+v\nsubmit: %+v", sync, batch)
	}
}

// TestViewConformance runs the shared device suite over volume views:
// the passthrough, a fair-share tier over two shards (requests split
// across extents and shards), and an EDF tier over an unaligned
// fixed-extent layout.
func TestViewConformance(t *testing.T) {
	mkView := func(t *testing.T, nshards int, sectors int64, opts ...volume.Option) device.Device {
		m := newManager(t, nshards, opts...)
		addVol(t, m, "t0", sectors)
		view, err := m.View("t0")
		if err != nil {
			t.Fatalf("View: %v", err)
		}
		return view
	}
	capacity := newSim(t, 1).Capacity()
	devtest.Run(t, "volume-pass", func(t *testing.T) device.Device {
		return mkView(t, 1, capacity)
	})
	devtest.Run(t, "volume-fair", func(t *testing.T) device.Device {
		return mkView(t, 2, 40000, volume.WithTier("fair"), volume.WithTierDepth(4))
	})
	devtest.Run(t, "volume-edf-unaligned", func(t *testing.T) device.Device {
		return mkView(t, 2, 40000, volume.WithTier("edf"), volume.WithTierDepth(4), volume.WithExtentSectors(100))
	})
}

// TestViewConformanceFuzz runs the seeded property suite (valid and
// boundary-invalid requests, Check invariants on every call) over a
// sharded fair-tier view and the unaligned EDF view.
func TestViewConformanceFuzz(t *testing.T) {
	const n, seed = 600, 11
	devtest.Fuzz(t, "volume-fair", func(t *testing.T) device.Device {
		m := newManager(t, 2, volume.WithTier("fair"), volume.WithTierDepth(4))
		addVol(t, m, "t0", 40000)
		view, err := m.View("t0")
		if err != nil {
			t.Fatalf("View: %v", err)
		}
		return view
	}, n, seed)
	devtest.Fuzz(t, "volume-edf-unaligned", func(t *testing.T) device.Device {
		m := newManager(t, 2, volume.WithTier("edf"), volume.WithExtentSectors(300))
		addVol(t, m, "t0", 40000)
		view, err := m.View("t0")
		if err != nil {
			t.Fatalf("View: %v", err)
		}
		return view
	}, n, seed)
}

// TestAdmissionZeroRate: the zero-value TenantLimit is a zero-rate
// token bucket — every request is rejected, deterministically, and the
// clock never moves.
func TestAdmissionZeroRate(t *testing.T) {
	m := newManager(t, 1)
	addVol(t, m, "t0", 10000, volume.WithLimit(volume.TenantLimit{}))
	for i := 0; i < 10; i++ {
		err := m.Submit("t0", float64(i), device.Request{LBN: int64(i) * 8, Sectors: 8})
		if !errors.Is(err, volume.ErrRejected) {
			t.Fatalf("request %d: err = %v, want ErrRejected", i, err)
		}
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	s, err := m.VolumeStats("t0")
	if err != nil {
		t.Fatalf("VolumeStats: %v", err)
	}
	if s.Rejected != 10 || s.Requests != 0 || s.Deferred != 0 {
		t.Fatalf("stats = %+v, want 10 rejected, 0 served", s)
	}
	if m.Now() != 0 {
		t.Fatalf("rejected requests advanced the clock to %g", m.Now())
	}
}

// TestAdmissionPoliceAndShape pins the two token-bucket modes: without
// Defer an empty bucket rejects; with Defer the same requests are
// admitted but released at the deterministic refill instants, and the
// shaping delay shows up in the response times.
func TestAdmissionPoliceAndShape(t *testing.T) {
	req := device.Request{LBN: 0, Sectors: 8}

	police := newManager(t, 1)
	addVol(t, police, "t0", 10000, volume.WithLimit(volume.TenantLimit{IOPS: 100}))
	if err := police.Submit("t0", 0, req); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if err := police.Submit("t0", 0, req); !errors.Is(err, volume.ErrRejected) {
		t.Fatalf("second request at t=0: err = %v, want ErrRejected", err)
	}
	if err := police.Submit("t0", 10, req); err != nil {
		t.Fatalf("request after refill: %v", err)
	}
	if err := police.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if s, _ := police.VolumeStats("t0"); s.Requests != 2 || s.Rejected != 1 {
		t.Fatalf("policing stats = %+v, want 2 served, 1 rejected", s)
	}

	shape := newManager(t, 1)
	addVol(t, shape, "t0", 10000, volume.WithLimit(volume.TenantLimit{IOPS: 100, Defer: true}))
	for i := 0; i < 3; i++ {
		if err := shape.Submit("t0", 0, req); err != nil {
			t.Fatalf("shaped request %d: %v", i, err)
		}
	}
	if err := shape.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	s, _ := shape.VolumeStats("t0")
	if s.Requests != 3 || s.Rejected != 0 || s.Deferred != 2 {
		t.Fatalf("shaping stats = %+v, want 3 served, 2 deferred", s)
	}
	// The third request was released at t=20ms; its response (measured
	// from the t=0 issue) must include that shaping delay.
	if s.MaxMs < 20 {
		t.Fatalf("max response %g ms does not include the 20 ms shaping delay", s.MaxMs)
	}
}

// TestAdmissionExactLoad: a limit exactly equal to the offered load
// admits everything — the boundary case where each refill interval
// earns exactly one request.
func TestAdmissionExactLoad(t *testing.T) {
	m := newManager(t, 1)
	// 125 IOPS = one request per 8 ms, both exact in binary.
	addVol(t, m, "t0", 10000, volume.WithLimit(volume.TenantLimit{IOPS: 125}))
	for i := 0; i < 50; i++ {
		if err := m.Submit("t0", float64(i)*8, device.Request{LBN: int64(i%100) * 8, Sectors: 8}); err != nil {
			t.Fatalf("request %d at exact rate rejected: %v", i, err)
		}
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if s, _ := m.VolumeStats("t0"); s.Requests != 50 || s.Rejected != 0 || s.Deferred != 0 {
		t.Fatalf("stats = %+v, want 50 served, none rejected or deferred", s)
	}
}

// TestAdmissionBandwidth covers the sector bucket: oversized requests
// are rejected outright even when deferring, and an exhausted bucket
// polices or shapes by cost.
func TestAdmissionBandwidth(t *testing.T) {
	m := newManager(t, 1)
	addVol(t, m, "t0", 10000, volume.WithLimit(volume.TenantLimit{SectorsPerSec: 1000, BurstSectors: 64, Defer: true}))
	if err := m.Submit("t0", 0, device.Request{LBN: 0, Sectors: 65}); !errors.Is(err, volume.ErrRejected) {
		t.Fatalf("oversized request: err = %v, want ErrRejected", err)
	}
	if err := m.Submit("t0", 0, device.Request{LBN: 0, Sectors: 64}); err != nil {
		t.Fatalf("burst-sized request: %v", err)
	}
	// Bucket empty; 64 more sectors take 64 ms to earn at 1 sector/ms.
	if err := m.Submit("t0", 0, device.Request{LBN: 64, Sectors: 64}); err != nil {
		t.Fatalf("shaped request: %v", err)
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	s, _ := m.VolumeStats("t0")
	if s.Requests != 2 || s.Rejected != 1 || s.Deferred != 1 {
		t.Fatalf("stats = %+v, want 2 served, 1 rejected, 1 deferred", s)
	}
	if s.MaxMs < 64 {
		t.Fatalf("max response %g ms does not include the 64 ms bandwidth wait", s.MaxMs)
	}
}

// TestAdmissionMaxInFlight: the queue-depth cap rejects (never defers)
// while the previous request is still in flight in virtual time.
func TestAdmissionMaxInFlight(t *testing.T) {
	m := newManager(t, 1)
	addVol(t, m, "t0", 10000, volume.WithLimit(volume.TenantLimit{MaxInFlight: 1, Defer: true}))
	res, err := m.ServeTenant("t0", 0, device.Request{LBN: 0, Sectors: 8})
	if err != nil {
		t.Fatalf("first request: %v", err)
	}
	if _, err := m.ServeTenant("t0", 0, device.Request{LBN: 8, Sectors: 8}); !errors.Is(err, volume.ErrRejected) {
		t.Fatalf("overlapping request: err = %v, want ErrRejected (Defer must not shape a depth cap)", err)
	}
	if _, err := m.ServeTenant("t0", res.Done, device.Request{LBN: 8, Sectors: 8}); err != nil {
		t.Fatalf("request after completion: %v", err)
	}
	if s, _ := m.VolumeStats("t0"); s.Requests != 2 || s.Rejected != 1 {
		t.Fatalf("stats = %+v, want 2 served, 1 rejected", s)
	}
}

// churnRun drives one deterministic add/serve/remove/add sequence and
// returns everything observable: per-request results, final stats, and
// the replacement tenant's placement.
func churnRun(t *testing.T) ([]device.Result, []volume.VolumeStats, []volume.Extent) {
	t.Helper()
	m := newManager(t, 2, volume.WithTier("fair"), volume.WithTierDepth(4))
	addVol(t, m, "a", 20000)
	b := addVol(t, m, "b", 20000)
	addVol(t, m, "c", 20000)
	bExts := b.ExtentTable()

	var results []device.Result
	rng := rand.New(rand.NewSource(5))
	at := 0.0
	serve := func(name string, n int) {
		v, err := m.Volume(name)
		if err != nil {
			t.Fatalf("Volume(%s): %v", name, err)
		}
		for i := 0; i < n; i++ {
			req := device.Request{LBN: rng.Int63n(v.Capacity() - 8), Sectors: 8, Write: rng.Intn(3) == 0}
			res, err := m.ServeTenant(name, at, req)
			if err != nil {
				t.Fatalf("ServeTenant(%s): %v", name, err)
			}
			results = append(results, res)
			at = res.Done + rng.Float64()
		}
	}
	serve("a", 8)
	serve("b", 8)

	// Mid-run churn: remove b, then a same-size replacement must land
	// exactly on b's freed extents (lowest-free-first reallocation).
	if err := m.RemoveVolume("b"); err != nil {
		t.Fatalf("RemoveVolume(b): %v", err)
	}
	d := addVol(t, m, "d", 20000)
	dExts := d.ExtentTable()
	for i, e := range dExts {
		if i < len(bExts) && e != bExts[i] {
			t.Fatalf("extent %d: d placed at %+v, b had %+v", i, e, bExts[i])
		}
	}
	serve("d", 8)
	serve("c", 8)
	return results, append(m.Stats(), m.Aggregate()), dExts
}

// TestTenantChurn: add/remove mid-run keeps the clock and placement
// deterministic — two identical runs are bit-identical in results,
// stats, and placement.
func TestTenantChurn(t *testing.T) {
	r1, s1, e1 := churnRun(t)
	r2, s2, e2 := churnRun(t)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("churn results diverged across identical runs")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("churn stats diverged across identical runs:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("churn placement diverged across identical runs")
	}
}

// TestRemoveVolumeInFlight: a tenant with admitted-but-unresolved
// requests cannot be removed until the batch is drained.
func TestRemoveVolumeInFlight(t *testing.T) {
	m := newManager(t, 1, volume.WithTier("fair"), volume.WithTierDepth(8))
	addVol(t, m, "t0", 10000)
	if err := m.Submit("t0", 0, device.Request{LBN: 0, Sectors: 8}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := m.RemoveVolume("t0"); err == nil {
		t.Fatal("RemoveVolume succeeded with a request in flight")
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := m.RemoveVolume("t0"); err != nil {
		t.Fatalf("RemoveVolume after drain: %v", err)
	}
	if err := m.RemoveVolume("t0"); err == nil {
		t.Fatal("RemoveVolume of unknown tenant succeeded")
	}
}

// TestFairShareWeights: under a backlog on one spindle, the fair tier
// gives a weight-4 tenant a shorter mean response than a weight-1
// tenant submitting the same load at the same instants.
func TestFairShareWeights(t *testing.T) {
	m := newManager(t, 1, volume.WithTier("fair"), volume.WithTierDepth(16))
	addVol(t, m, "heavy", 8000, volume.WithWeight(4))
	addVol(t, m, "light", 8000)
	for i := 0; i < 24; i++ {
		lbn := int64(i%10) * 512
		if err := m.Submit("heavy", 0, device.Request{LBN: lbn, Sectors: 64}); err != nil {
			t.Fatalf("heavy %d: %v", i, err)
		}
		if err := m.Submit("light", 0, device.Request{LBN: lbn, Sectors: 64}); err != nil {
			t.Fatalf("light %d: %v", i, err)
		}
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	heavy, _ := m.VolumeStats("heavy")
	light, _ := m.VolumeStats("light")
	if heavy.Requests != 24 || light.Requests != 24 {
		t.Fatalf("served %d/%d, want 24/24", heavy.Requests, light.Requests)
	}
	if heavy.MeanMs >= light.MeanMs {
		t.Fatalf("fair share ignored weights: heavy mean %g ms, light mean %g ms", heavy.MeanMs, light.MeanMs)
	}
}

// TestEDFDeadlines: under the same backlog, the EDF tier serves the
// tight-deadline tenant ahead of the loose one.
func TestEDFDeadlines(t *testing.T) {
	m := newManager(t, 1, volume.WithTier("edf"), volume.WithTierDepth(16))
	addVol(t, m, "urgent", 8000, volume.WithDeadline(5))
	addVol(t, m, "relaxed", 8000, volume.WithDeadline(500))
	for i := 0; i < 24; i++ {
		lbn := int64(i%10) * 512
		if err := m.Submit("relaxed", 0, device.Request{LBN: lbn, Sectors: 64}); err != nil {
			t.Fatalf("relaxed %d: %v", i, err)
		}
		if err := m.Submit("urgent", 0, device.Request{LBN: lbn, Sectors: 64}); err != nil {
			t.Fatalf("urgent %d: %v", i, err)
		}
	}
	if err := m.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	urgent, _ := m.VolumeStats("urgent")
	relaxed, _ := m.VolumeStats("relaxed")
	if urgent.MeanMs >= relaxed.MeanMs {
		t.Fatalf("EDF ignored deadlines: urgent mean %g ms, relaxed mean %g ms", urgent.MeanMs, relaxed.MeanMs)
	}
}

// TestAddVolumeErrors covers the construction edge cases: duplicates,
// bad sizes, exhausted capacity with rollback.
func TestAddVolumeErrors(t *testing.T) {
	m := newManager(t, 1)
	capacity := newSim(t, 1).Capacity()
	if _, err := m.AddVolume("", 100); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := m.AddVolume("t0", 0); err == nil {
		t.Fatal("zero size accepted")
	}
	addVol(t, m, "t0", capacity/2)
	if _, err := m.AddVolume("t0", 100); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	// More than the remaining capacity: must fail and roll back.
	if _, err := m.AddVolume("big", capacity); err == nil {
		t.Fatal("oversubscription accepted")
	}
	// The rollback returned every extent: the remaining half still fits.
	addVol(t, m, "rest", capacity/2-capacity/100)
	if _, err := m.View("nobody"); err == nil {
		t.Fatal("View of unknown tenant succeeded")
	}
	if _, err := m.VolumeStats("nobody"); err == nil {
		t.Fatal("VolumeStats of unknown tenant succeeded")
	}
	names := m.Tenants()
	if !reflect.DeepEqual(names, []string{"t0", "rest"}) {
		t.Fatalf("Tenants = %v", names)
	}
}
