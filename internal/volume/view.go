package volume

import (
	"fmt"

	"traxtents/internal/device"
)

// View presents one tenant's volume as a device.Device, so everything
// that drives a device — the conformance suite, the workload drivers,
// the file-system studies — runs unchanged against a volume. Serve is
// ServeTenant (a barrier per request); a view over a limited tenant
// surfaces admission rejections as Serve errors, so conformance runs
// should use an unlimited tenant.
type View struct {
	m *Manager
	v *Volume
}

var (
	_ device.Device           = (*View)(nil)
	_ device.Rotational       = (*View)(nil)
	_ device.BoundaryProvider = (*View)(nil)
	_ device.Named            = (*View)(nil)
)

// View returns a device view of a tenant's volume.
func (m *Manager) View(name string) (*View, error) {
	v, ok := m.vols[name]
	if !ok {
		return nil, fmt.Errorf("volume: unknown tenant %q", name)
	}
	return &View{m: m, v: v}, nil
}

// Serve services one request against the volume's LBN space.
func (w *View) Serve(at float64, req device.Request) (device.Result, error) {
	return w.m.ServeTenant(w.v.name, at, req)
}

// Now returns the completion time of the tenant's last finished
// request.
func (w *View) Now() float64 { return w.v.lastDone }

// Capacity returns the volume's addressable LBNs.
func (w *View) Capacity() int64 { return w.v.capacity }

// SectorSize returns the shards' sector size.
func (w *View) SectorSize() int { return w.m.sectorSize }

// RotationPeriod returns the shards' common rotation period, or 0 when
// they differ or have none.
func (w *View) RotationPeriod() float64 { return w.m.rotation }

// TrackBoundaries returns the volume's extent boundaries — the
// volume-level traxtents: with aligned placement every extent is a
// whole shard track, so aligning to these boundaries aligns to the
// physical ones.
func (w *View) TrackBoundaries() []int64 { return append([]int64(nil), w.v.bounds...) }

// Name identifies the tenant and the manager configuration.
func (w *View) Name() string {
	return fmt.Sprintf("volume[%s]@%s[x%d,d%d]", w.v.name, w.m.cfg.tier, len(w.m.shards), w.m.cfg.depth)
}
