package traxtent

import (
	"errors"
	"fmt"
	"sort"
)

// Extent is a contiguous LBN range [Start, Start+Len).
type Extent struct {
	Start int64
	Len   int64
}

// End returns the first LBN past the extent.
func (e Extent) End() int64 { return e.Start + e.Len }

// Contains reports whether lbn lies inside the extent.
func (e Extent) Contains(lbn int64) bool { return lbn >= e.Start && lbn < e.End() }

func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Start, e.End()) }

// Table is a track-boundary table: entry i is the first LBN of track i,
// and a final sentinel marks the end of the covered range. Tracks are
// the natural traxtents; consecutive entries delimit one.
type Table struct {
	bounds []int64
}

// ErrOutOfRange is returned for LBNs outside the table's coverage.
var ErrOutOfRange = errors.New("traxtent: LBN outside table range")

// New validates and adopts a boundary list: at least two entries,
// strictly increasing. The caller's slice is copied.
func New(bounds []int64) (*Table, error) {
	if len(bounds) < 2 {
		return nil, errors.New("traxtent: need at least two boundaries")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("traxtent: boundaries not strictly increasing at %d (%d <= %d)",
				i, bounds[i], bounds[i-1])
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Table{bounds: b}, nil
}

// NumTracks returns the number of traxtents in the table.
func (t *Table) NumTracks() int { return len(t.bounds) - 1 }

// Range returns the covered LBN range [first, end).
func (t *Table) Range() (first, end int64) { return t.bounds[0], t.bounds[len(t.bounds)-1] }

// Index returns the i-th traxtent.
func (t *Table) Index(i int) Extent {
	return Extent{Start: t.bounds[i], Len: t.bounds[i+1] - t.bounds[i]}
}

// Boundaries returns a copy of the raw boundary list.
func (t *Table) Boundaries() []int64 {
	out := make([]int64, len(t.bounds))
	copy(out, t.bounds)
	return out
}

// find returns the index of the traxtent containing lbn.
func (t *Table) find(lbn int64) (int, error) {
	if lbn < t.bounds[0] || lbn >= t.bounds[len(t.bounds)-1] {
		return 0, fmt.Errorf("%w: %d not in [%d,%d)", ErrOutOfRange, lbn, t.bounds[0], t.bounds[len(t.bounds)-1])
	}
	// First boundary greater than lbn, minus one.
	i := sort.Search(len(t.bounds), func(i int) bool { return t.bounds[i] > lbn }) - 1
	return i, nil
}

// Find returns the traxtent containing lbn.
func (t *Table) Find(lbn int64) (Extent, error) {
	i, err := t.find(lbn)
	if err != nil {
		return Extent{}, err
	}
	return t.Index(i), nil
}

// FindIndex returns the index of the traxtent containing lbn.
func (t *Table) FindIndex(lbn int64) (int, error) { return t.find(lbn) }

// Clip returns the largest count <= n such that [lbn, lbn+count) does
// not cross a track boundary. This is the request-clipping primitive the
// modified FFS read-ahead uses (§4.2.2).
func (t *Table) Clip(lbn int64, n int64) (int64, error) {
	e, err := t.Find(lbn)
	if err != nil {
		return 0, err
	}
	if room := e.End() - lbn; n > room {
		return room, nil
	}
	return n, nil
}

// Split partitions the request [lbn, lbn+n) into track-aligned pieces,
// one per crossed traxtent. The pieces cover the request exactly.
func (t *Table) Split(lbn int64, n int64) ([]Extent, error) {
	if n <= 0 {
		return nil, fmt.Errorf("traxtent: split of %d sectors", n)
	}
	var out []Extent
	for n > 0 {
		c, err := t.Clip(lbn, n)
		if err != nil {
			return nil, err
		}
		out = append(out, Extent{Start: lbn, Len: c})
		lbn += c
		n -= c
	}
	return out, nil
}

// Aligned reports whether the request [lbn, lbn+n) exactly covers one or
// more whole traxtents.
func (t *Table) Aligned(lbn int64, n int64) bool {
	e, err := t.Find(lbn)
	if err != nil || e.Start != lbn {
		return false
	}
	end := lbn + n
	for e.End() < end {
		ne, err := t.Find(e.End())
		if err != nil {
			return false
		}
		e = ne
	}
	return e.End() == end
}

// Next returns the first traxtent starting at or after lbn.
func (t *Table) Next(lbn int64) (Extent, bool) {
	i := sort.Search(len(t.bounds)-1, func(i int) bool { return t.bounds[i] >= lbn })
	if i >= t.NumTracks() {
		return Extent{}, false
	}
	return t.Index(i), true
}

// Adjust rebases the table to a partition starting at offset LBNs into
// the disk and limited to size LBNs (the paper's "adjusted to the file
// system's partition" step). Boundaries outside the partition are
// dropped; partial first/last tracks remain as (shorter) extents so the
// partition stays fully covered.
func (t *Table) Adjust(offset, size int64) (*Table, error) {
	if offset < 0 || size <= 0 {
		return nil, fmt.Errorf("traxtent: bad partition offset=%d size=%d", offset, size)
	}
	first, end := t.Range()
	if offset < first || offset+size > end {
		return nil, fmt.Errorf("traxtent: partition [%d,%d) outside table [%d,%d)",
			offset, offset+size, first, end)
	}
	var out []int64
	out = append(out, 0)
	for _, b := range t.bounds {
		rel := b - offset
		if rel > 0 && rel < size {
			out = append(out, rel)
		}
	}
	out = append(out, size)
	return New(out)
}

// MeanTrackLen returns the average traxtent length in sectors (useful
// for sizing decisions and reports).
func (t *Table) MeanTrackLen() float64 {
	first, end := t.Range()
	return float64(end-first) / float64(t.NumTracks())
}
