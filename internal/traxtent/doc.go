// Package traxtent implements track-aligned extents, the paper's primary
// contribution: a compact table of disk track boundaries and the
// operations systems need to exploit it — finding the traxtent holding
// an LBN, clipping and splitting requests at track boundaries, computing
// excluded blocks for block-based file systems, allocating whole-track
// extents, and serializing the table for on-disk storage.
//
// The package is deliberately device-independent: it consumes a boundary
// list produced by either extraction method (internal/extract,
// internal/dixtrac) or by any other means, and nothing in it depends on
// a particular disk. That separation is the paper's §3 design argument —
// file system code needs variable-sized extents, not device drivers.
package traxtent
