package traxtent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fixedTable builds a table of n tracks of the given length.
func fixedTable(t *testing.T, n int, length int64) *Table {
	t.Helper()
	bounds := make([]int64, n+1)
	for i := range bounds {
		bounds[i] = int64(i) * length
	}
	tb, err := New(bounds)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tb
}

// randomTable builds a table with varying track lengths (like a zoned,
// defect-slipped disk).
func randomTable(rng *rand.Rand, tracks int) *Table {
	bounds := make([]int64, 0, tracks+1)
	cur := int64(rng.Intn(1000))
	bounds = append(bounds, cur)
	for i := 0; i < tracks; i++ {
		cur += int64(50 + rng.Intn(500))
		bounds = append(bounds, cur)
	}
	tb, err := New(bounds)
	if err != nil {
		panic(err)
	}
	return tb
}

func TestNewValidates(t *testing.T) {
	if _, err := New([]int64{5}); err == nil {
		t.Fatal("single boundary must be rejected")
	}
	if _, err := New([]int64{0, 10, 10}); err == nil {
		t.Fatal("non-increasing boundaries must be rejected")
	}
	if _, err := New([]int64{0, 10, 5}); err == nil {
		t.Fatal("decreasing boundaries must be rejected")
	}
	tb, err := New([]int64{0, 10, 30})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tb.NumTracks() != 2 {
		t.Fatalf("NumTracks = %d, want 2", tb.NumTracks())
	}
}

func TestFindAndClip(t *testing.T) {
	tb := fixedTable(t, 10, 100)
	e, err := tb.Find(250)
	if err != nil || e.Start != 200 || e.Len != 100 {
		t.Fatalf("Find(250) = %v, %v", e, err)
	}
	if _, err := tb.Find(-1); err == nil {
		t.Fatal("Find(-1) must fail")
	}
	if _, err := tb.Find(1000); err == nil {
		t.Fatal("Find(end) must fail")
	}
	// Clip stops at the boundary.
	c, err := tb.Clip(250, 500)
	if err != nil || c != 50 {
		t.Fatalf("Clip(250,500) = %d, %v; want 50", c, err)
	}
	c, err = tb.Clip(200, 60)
	if err != nil || c != 60 {
		t.Fatalf("Clip(200,60) = %d, %v; want 60", c, err)
	}
}

func TestSplitCoversRequest(t *testing.T) {
	tb := fixedTable(t, 10, 100)
	parts, err := tb.Split(150, 400)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	want := []Extent{{150, 50}, {200, 100}, {300, 100}, {400, 100}, {500, 50}}
	if len(parts) != len(want) {
		t.Fatalf("Split = %v, want %v", parts, want)
	}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("part %d = %v, want %v", i, parts[i], want[i])
		}
	}
	if _, err := tb.Split(0, 0); err == nil {
		t.Fatal("zero-length split must fail")
	}
}

func TestAligned(t *testing.T) {
	tb := fixedTable(t, 10, 100)
	for _, c := range []struct {
		lbn, n int64
		want   bool
	}{
		{0, 100, true}, {100, 200, true}, {0, 1000, true},
		{0, 50, false}, {50, 100, false}, {100, 150, false},
	} {
		if got := tb.Aligned(c.lbn, c.n); got != c.want {
			t.Errorf("Aligned(%d,%d) = %v, want %v", c.lbn, c.n, got, c.want)
		}
	}
}

func TestNext(t *testing.T) {
	tb := fixedTable(t, 4, 100)
	e, ok := tb.Next(150)
	if !ok || e.Start != 200 {
		t.Fatalf("Next(150) = %v,%v; want start 200", e, ok)
	}
	e, ok = tb.Next(200)
	if !ok || e.Start != 200 {
		t.Fatalf("Next(200) = %v,%v; want start 200", e, ok)
	}
	if _, ok := tb.Next(400); ok {
		t.Fatal("Next past end must fail")
	}
}

func TestAdjustToPartition(t *testing.T) {
	tb := fixedTable(t, 10, 100) // [0,1000)
	// Partition starting mid-track 1, 500 LBNs long.
	p, err := tb.Adjust(150, 500)
	if err != nil {
		t.Fatalf("Adjust: %v", err)
	}
	first, end := p.Range()
	if first != 0 || end != 500 {
		t.Fatalf("partition range [%d,%d), want [0,500)", first, end)
	}
	// First extent is the 50-sector tail of disk track 1.
	if e := p.Index(0); e.Len != 50 {
		t.Fatalf("first partition extent %v, want len 50", e)
	}
	// Interior extents are whole 100-sector tracks.
	if e := p.Index(1); e.Start != 50 || e.Len != 100 {
		t.Fatalf("second partition extent %v", e)
	}
	if _, err := tb.Adjust(900, 200); err == nil {
		t.Fatal("partition past table end must fail")
	}
	if _, err := tb.Adjust(-1, 10); err == nil {
		t.Fatal("negative offset must fail")
	}
}

func TestExcludedBlocks(t *testing.T) {
	// Track length 100, blocks of 16: boundaries at multiples of 100.
	// Block 6 = [96,112) spans boundary 100 -> excluded. Pattern repeats
	// every 4 blocks (lcm(16,100)=400) except where boundary falls on a
	// block edge.
	tb := fixedTable(t, 10, 100)
	ex := tb.ExcludedBlocks(16)
	if len(ex) == 0 {
		t.Fatal("expected excluded blocks")
	}
	for _, blk := range ex {
		if !tb.IsExcluded(blk, 16) {
			t.Errorf("block %d listed but IsExcluded false", blk)
		}
	}
	// Exhaustive cross-check.
	var want []int64
	for blk := int64(0); blk < 1000/16; blk++ {
		if tb.IsExcluded(blk, 16) {
			want = append(want, blk)
		}
	}
	if len(want) != len(ex) {
		t.Fatalf("ExcludedBlocks = %v, exhaustive scan = %v", ex, want)
	}
	for i := range want {
		if want[i] != ex[i] {
			t.Fatalf("ExcludedBlocks[%d] = %d, want %d", i, ex[i], want[i])
		}
	}
	// Block-aligned boundaries exclude nothing.
	tb2 := fixedTable(t, 10, 160)
	if ex := tb2.ExcludedBlocks(16); len(ex) != 0 {
		t.Fatalf("aligned boundaries produced exclusions: %v", ex)
	}
}

// TestQuickExcluded: for arbitrary tables and block sizes, the
// boundary-walking ExcludedBlocks matches an exhaustive scan.
func TestQuickExcluded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, 5+rng.Intn(30))
		bs := int64(4 << rng.Intn(4)) // 4..32 sectors
		fast := tb.ExcludedBlocks(bs)
		first, end := tb.Range()
		var slow []int64
		for blk := int64(0); blk < (end-first)/bs; blk++ {
			if tb.IsExcluded(blk, bs) {
				slow = append(slow, blk)
			}
		}
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplitInvariants: Split always covers exactly the request, the
// pieces abut, and every interior piece boundary is a track boundary.
func TestQuickSplitInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, 5+rng.Intn(30))
		first, end := tb.Range()
		lbn := first + rng.Int63n(end-first-1)
		n := 1 + rng.Int63n(end-lbn)
		parts, err := tb.Split(lbn, n)
		if err != nil {
			return false
		}
		cur := lbn
		var total int64
		for _, p := range parts {
			if p.Start != cur || p.Len <= 0 {
				return false
			}
			cur = p.End()
			total += p.Len
			// No piece crosses a boundary.
			e, err := tb.Find(p.Start)
			if err != nil || p.End() > e.End() {
				return false
			}
		}
		return total == n && cur == lbn+n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		tb := randomTable(rng, 1+rng.Intn(100))
		data, err := tb.MarshalBinary()
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		back, err := UnmarshalBinary(data)
		if err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		a, b := tb.Boundaries(), back.Boundaries()
		if len(a) != len(b) {
			t.Fatalf("boundary count %d != %d", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("boundary %d: %d != %d", j, a[j], b[j])
			}
		}
	}
}

func TestEncodeRejectsCorruption(t *testing.T) {
	tb := fixedTable(t, 10, 100)
	data, err := tb.MarshalBinary()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, mut := range []func([]byte) []byte{
		func(d []byte) []byte { d[7] ^= 0xFF; return d },       // body flip
		func(d []byte) []byte { return d[:len(d)-1] },          // truncate
		func(d []byte) []byte { d[0] = 0; return d },           // magic
		func(d []byte) []byte { d[len(d)-1] ^= 0x1; return d }, // checksum
	} {
		c := append([]byte(nil), data...)
		if _, err := UnmarshalBinary(mut(c)); err == nil {
			t.Fatal("corrupted encoding accepted")
		}
	}
	if _, err := UnmarshalBinary(nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

func TestAllocator(t *testing.T) {
	tb := fixedTable(t, 10, 100)
	a := NewAllocator(tb)
	if a.FreeCount() != 10 {
		t.Fatalf("FreeCount = %d, want 10", a.FreeCount())
	}
	e, ok := a.AllocNear(450)
	if !ok || e.Start != 400 {
		t.Fatalf("AllocNear(450) = %v,%v; want track at 400", e, ok)
	}
	// Nearest again: same hint now picks a neighbour.
	e2, ok := a.AllocNear(450)
	if !ok || (e2.Start != 500 && e2.Start != 300) {
		t.Fatalf("AllocNear(450) second = %v,%v; want neighbour", e2, ok)
	}
	if err := a.Free(e); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := a.Free(e); err == nil {
		t.Fatal("double free accepted")
	}
	if err := a.Free(Extent{Start: 410, Len: 50}); err == nil {
		t.Fatal("partial-extent free accepted")
	}
	// Exhaust.
	for {
		if _, ok := a.Alloc(); !ok {
			break
		}
	}
	if a.FreeCount() != 0 {
		t.Fatalf("FreeCount = %d after exhaustion", a.FreeCount())
	}
	if _, ok := a.AllocNear(0); ok {
		t.Fatal("allocation from empty pool succeeded")
	}
}

// TestQuickAllocatorNeverDoubleAllocates: random alloc/free sequences
// keep the free count consistent and never hand out a traxtent twice.
func TestQuickAllocatorNeverDoubleAllocates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, 5+rng.Intn(20))
		a := NewAllocator(tb)
		held := make(map[int64]Extent)
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 {
				first, end := tb.Range()
				e, ok := a.AllocNear(first + rng.Int63n(end-first))
				if !ok {
					continue
				}
				if _, dup := held[e.Start]; dup {
					return false
				}
				held[e.Start] = e
			} else {
				for _, e := range held {
					if a.Free(e) != nil {
						return false
					}
					delete(held, e.Start)
					break
				}
			}
			if a.FreeCount() != tb.NumTracks()-len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReserve(t *testing.T) {
	tb := fixedTable(t, 5, 100)
	a := NewAllocator(tb)
	if !a.Reserve(2) {
		t.Fatal("Reserve(2) failed")
	}
	if a.Reserve(2) {
		t.Fatal("double Reserve succeeded")
	}
	if a.Reserve(-1) || a.Reserve(5) {
		t.Fatal("out-of-range Reserve succeeded")
	}
	e, ok := a.AllocNear(250)
	if !ok || e.Start == 200 {
		t.Fatalf("AllocNear returned reserved traxtent %v", e)
	}
}

func TestMeanTrackLen(t *testing.T) {
	tb := fixedTable(t, 10, 100)
	if got := tb.MeanTrackLen(); got != 100 {
		t.Fatalf("MeanTrackLen = %g, want 100", got)
	}
}
