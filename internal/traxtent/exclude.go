package traxtent

// Excluded blocks (§4.2.2): a block-based file system with fixed-size
// blocks cannot split a block across a track boundary, so any block that
// would span one is marked used in the free map and never allocated.
// The paper measures one in twenty blocks excluded on the Quantum Atlas
// 10K and one in thirty on the Atlas 10K II at 8 KB blocks.

// IsExcluded reports whether block blk (of blockSectors sectors,
// numbered from the table's first LBN) spans a track boundary.
func (t *Table) IsExcluded(blk int64, blockSectors int64) bool {
	first, end := t.Range()
	start := first + blk*blockSectors
	if start < first || start+blockSectors > end {
		return false // out-of-range blocks are the caller's problem
	}
	e, err := t.Find(start)
	if err != nil {
		return false
	}
	return start+blockSectors > e.End()
}

// ExcludedBlocks returns the block numbers (of blockSectors-sized
// blocks, numbered from the table's first LBN) that span track
// boundaries. Rather than scanning every block, it walks the boundaries:
// only the block straddling each boundary can be excluded.
func (t *Table) ExcludedBlocks(blockSectors int64) []int64 {
	first, _ := t.Range()
	var out []int64
	for i := 1; i < len(t.bounds)-1; i++ {
		b := t.bounds[i]
		blk := (b - first - 1) / blockSectors // block containing LBN b-1
		start := first + blk*blockSectors
		if start < b && start+blockSectors > b {
			// The block genuinely straddles this boundary.
			if len(out) == 0 || out[len(out)-1] != blk {
				out = append(out, blk)
			}
		}
	}
	return out
}

// ExcludedFraction returns the fraction of the table's blocks that are
// excluded at the given block size.
func (t *Table) ExcludedFraction(blockSectors int64) float64 {
	first, end := t.Range()
	total := (end - first) / blockSectors
	if total == 0 {
		return 0
	}
	return float64(len(t.ExcludedBlocks(blockSectors))) / float64(total)
}
