package traxtent

import "fmt"

// Allocator hands out whole traxtents (track-sized, track-aligned
// extents) with locality: AllocNear returns the free traxtent closest to
// a hint LBN, which is what an extent-based file system or an LFS with
// variable-sized segments needs (§3.2, §5.5.1).
type Allocator struct {
	t     *Table
	free  []bool
	nfree int
}

// NewAllocator creates an allocator with every traxtent free.
func NewAllocator(t *Table) *Allocator {
	a := &Allocator{t: t, free: make([]bool, t.NumTracks()), nfree: t.NumTracks()}
	for i := range a.free {
		a.free[i] = true
	}
	return a
}

// FreeCount returns the number of free traxtents.
func (a *Allocator) FreeCount() int { return a.nfree }

// Alloc returns the lowest-numbered free traxtent.
func (a *Allocator) Alloc() (Extent, bool) {
	for i, f := range a.free {
		if f {
			a.free[i] = false
			a.nfree--
			return a.t.Index(i), true
		}
	}
	return Extent{}, false
}

// AllocNear returns the free traxtent whose start is closest to hint,
// scanning outward from the traxtent containing it.
func (a *Allocator) AllocNear(hint int64) (Extent, bool) {
	if a.nfree == 0 {
		return Extent{}, false
	}
	first, end := a.t.Range()
	if hint < first {
		hint = first
	}
	if hint >= end {
		hint = end - 1
	}
	c, err := a.t.find(hint)
	if err != nil {
		return Extent{}, false
	}
	for d := 0; d < len(a.free); d++ {
		if i := c + d; i < len(a.free) && a.free[i] {
			a.free[i] = false
			a.nfree--
			return a.t.Index(i), true
		}
		if i := c - d; d > 0 && i >= 0 && a.free[i] {
			a.free[i] = false
			a.nfree--
			return a.t.Index(i), true
		}
	}
	return Extent{}, false
}

// Reserve marks traxtent i allocated; it reports false if already taken.
func (a *Allocator) Reserve(i int) bool {
	if i < 0 || i >= len(a.free) || !a.free[i] {
		return false
	}
	a.free[i] = false
	a.nfree--
	return true
}

// Free returns an extent to the allocator. The extent must be exactly
// one traxtent (same contract as an LFS freeing a cleaned segment).
func (a *Allocator) Free(e Extent) error {
	i, err := a.t.find(e.Start)
	if err != nil {
		return err
	}
	if got := a.t.Index(i); got != e {
		return fmt.Errorf("traxtent: Free(%v) is not a whole traxtent (%v)", e, got)
	}
	if a.free[i] {
		return fmt.Errorf("traxtent: double free of %v", e)
	}
	a.free[i] = true
	a.nfree++
	return nil
}
