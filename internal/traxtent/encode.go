package traxtent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk encoding of a boundary table (§4.2.2: "track boundaries are
// identified, adjusted to the file system's partition, and stored on
// disk; at mount time they are read in"). Format:
//
//	magic   uint32 = 0x54525854 ("TRXT")
//	version uint16 = 1
//	count   uvarint          number of boundaries
//	base    varint           first boundary
//	deltas  count-1 uvarints successive differences
//	crc32   uint32           IEEE, over everything before it
//
// Delta encoding keeps the table small: a 9 GB disk's ~50k boundaries
// encode in ~100 KB because track lengths fit in two bytes.

const (
	encMagic   = 0x54525854
	encVersion = 1
)

// MarshalBinary encodes the table.
func (t *Table) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 8+len(t.bounds)*2)
	buf = binary.BigEndian.AppendUint32(buf, encMagic)
	buf = binary.BigEndian.AppendUint16(buf, encVersion)
	buf = binary.AppendUvarint(buf, uint64(len(t.bounds)))
	buf = binary.AppendVarint(buf, t.bounds[0])
	for i := 1; i < len(t.bounds); i++ {
		buf = binary.AppendUvarint(buf, uint64(t.bounds[i]-t.bounds[i-1]))
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalBinary decodes an encoded table, verifying the checksum and
// structural invariants.
func UnmarshalBinary(data []byte) (*Table, error) {
	if len(data) < 4+2+1+1+4 {
		return nil, errors.New("traxtent: encoded table too short")
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errors.New("traxtent: checksum mismatch")
	}
	if binary.BigEndian.Uint32(body[0:4]) != encMagic {
		return nil, errors.New("traxtent: bad magic")
	}
	if v := binary.BigEndian.Uint16(body[4:6]); v != encVersion {
		return nil, fmt.Errorf("traxtent: unsupported version %d", v)
	}
	p := body[6:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count < 2 {
		return nil, errors.New("traxtent: bad boundary count")
	}
	p = p[n:]
	base, n := binary.Varint(p)
	if n <= 0 {
		return nil, errors.New("traxtent: bad base boundary")
	}
	p = p[n:]
	bounds := make([]int64, 1, count)
	bounds[0] = base
	for i := uint64(1); i < count; i++ {
		d, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, errors.New("traxtent: truncated deltas")
		}
		if d == 0 {
			return nil, errors.New("traxtent: zero-length track in encoding")
		}
		p = p[n:]
		bounds = append(bounds, bounds[len(bounds)-1]+int64(d))
	}
	if len(p) != 0 {
		return nil, errors.New("traxtent: trailing bytes")
	}
	return New(bounds)
}
