// Package dixtrac implements the SCSI-specific disk characterization of
// §4.1.2: a five-step algorithm that extracts the complete
// LBN-to-physical mapping — and hence the exact track boundary table —
// in a number of address translations largely independent of capacity
// (the paper reports under 30,000, under a minute of wall time):
//
//  1. READ CAPACITY for the highest LBN; cylinder/surface counts
//     verified by translating targeted LBNs.
//  2. READ DEFECT LIST for all media defects.
//  3. Expert rules to identify the spare-space reservation scheme.
//  4. Zone boundaries and physical sectors-per-track, by probing
//     translation validity (a slot past the physical end of a track is
//     an invalid address).
//  5. Classification of each defect as slipped or remapped by
//     back-translating the LBNs adjacent to it.
//
// From the learned parameters it reconstructs the full layout
// arithmetically and verifies it against sampled translations; on any
// mismatch (an unknown sparing scheme, say) the caller can use Fallback,
// the expertise-free SCSI walk that costs ~2 translations per track.
package dixtrac
