package dixtrac

import (
	"fmt"

	"traxtents/internal/scsi"
	"traxtents/internal/traxtent"
)

// Fallback is the expertise-free, SCSI-specific extraction of §4.1.2's
// closing paragraph: instead of request timing it walks the disk with
// SEND/RECEIVE DIAGNOSTIC translations, discovering each track boundary
// directly. It needs no knowledge of sparing schemes and costs about
// 2.0–2.3 translations per track (the paper's number): in the steady
// state, one translation confirms the predicted boundary's predecessor
// is still on the current track and one identifies the new track. Track
// lengths are learned per head, so per-cylinder sparing (a shorter last
// track every cylinder) still predicts exactly.
func Fallback(t *scsi.Target) (*traxtent.Table, error) {
	maxLBN, _ := t.ReadCapacity()
	end := maxLBN + 1
	_, surfaces := t.ModeGeometry()

	type track struct{ cyl, head int32 }
	trackOf := func(lbn int64) (track, error) {
		loc, err := t.TranslateLBN(lbn)
		if err != nil {
			return track{}, err
		}
		return track{loc.Cyl, loc.Head}, nil
	}
	successor := func(tk track) track {
		tk.head++
		if int(tk.head) >= surfaces {
			tk.head = 0
			tk.cyl++
		}
		return tk
	}

	bounds := []int64{0}
	curTrack, err := trackOf(0)
	if err != nil {
		return nil, err
	}

	// isChange looks past a single remapped-LBN anomaly: a remapped
	// sector translates to a distant spare, which would masquerade as a
	// track change for exactly one LBN.
	isChange := func(lbn int64, cur track) (bool, error) {
		tk, err := trackOf(lbn)
		if err != nil {
			return false, err
		}
		if tk == cur {
			return false, nil
		}
		if lbn+1 < end {
			tk2, err := trackOf(lbn + 1)
			if err != nil {
				return false, err
			}
			if tk2 == cur {
				return false, nil // lone anomaly: remapped LBN
			}
		}
		return true, nil
	}

	// findBoundary locates the first LBN in (lo, hi] on a different
	// track than cur, by bisection.
	findBoundary := func(lo, hi int64, cur track) (int64, error) {
		for lo+1 < hi {
			mid := (lo + hi) / 2
			ch, err := isChange(mid, cur)
			if err != nil {
				return 0, err
			}
			if ch {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi, nil
	}

	// lengths remembers the last observed track length per head, which
	// makes the prediction exact under per-track and per-cylinder
	// sparing alike.
	lengths := make(map[int32]int64)
	commit := func(b int64, cur int64, head int32) {
		bounds = append(bounds, b)
		lengths[head] = b - cur
	}

	cur := int64(0)
	n := int64(256) // first-track guess; learned thereafter
	for cur < end {
		if l, ok := lengths[curTrack.head]; ok {
			n = l
		}
		cand := cur + n
		if cand >= end {
			// The remainder may still contain boundaries (short final
			// zone): bisect while any track change remains.
			for cur+1 < end {
				ch, err := isChange(end-1, curTrack)
				if err != nil {
					return nil, err
				}
				if !ch {
					break
				}
				b, err := findBoundary(cur, end-1, curTrack)
				if err != nil {
					return nil, err
				}
				commit(b, cur, curTrack.head)
				if curTrack, err = trackOf(b); err != nil {
					return nil, err
				}
				cur = b
			}
			break
		}

		chPrev, err := isChange(cand-1, curTrack)
		if err != nil {
			return nil, err
		}
		if chPrev {
			// Boundary earlier than predicted (defect slip, zone change).
			b, err := findBoundary(cur, cand-1, curTrack)
			if err != nil {
				return nil, err
			}
			commit(b, cur, curTrack.head)
			if curTrack, err = trackOf(b); err != nil {
				return nil, err
			}
			n = b - cur
			cur = b
			continue
		}

		tk, err := trackOf(cand)
		if err != nil {
			return nil, err
		}
		if tk != curTrack {
			accept := tk == successor(curTrack)
			if !accept {
				// Either the next data track is further away (spare
				// tracks between) or cand is a remapped anomaly; one
				// extra probe distinguishes them.
				tk2, err := trackOf(cand + 1)
				if err == nil && tk2 == curTrack {
					// Anomaly: keep walking this track below.
					tk = curTrack
				} else {
					accept = true
				}
			}
			if accept {
				commit(cand, cur, curTrack.head)
				curTrack = tk
				n = cand - cur
				cur = cand
				continue
			}
		}

		// Boundary later than predicted: grow, then bisect.
		lo, hi := cand, cand+n
		for {
			if hi >= end {
				hi = end - 1
				break
			}
			ch, err := isChange(hi, curTrack)
			if err != nil {
				return nil, err
			}
			if ch {
				break
			}
			lo = hi
			hi += n
		}
		ch, err := isChange(hi, curTrack)
		if err != nil {
			return nil, err
		}
		if !ch {
			break // disk ends inside the current track
		}
		b, err := findBoundary(lo, hi, curTrack)
		if err != nil {
			return nil, err
		}
		commit(b, cur, curTrack.head)
		if curTrack, err = trackOf(b); err != nil {
			return nil, err
		}
		n = b - cur
		cur = b
		if n <= 0 {
			return nil, fmt.Errorf("dixtrac: fallback made no progress at LBN %d", cur)
		}
	}
	bounds = append(bounds, end)
	return traxtent.New(dedup(bounds))
}

// dedup removes repeated entries from a sorted boundary list.
func dedup(bounds []int64) []int64 {
	out := bounds[:1]
	for _, b := range bounds[1:] {
		if b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}
