package dixtrac

import (
	"fmt"
	"math/rand"

	"traxtents/internal/disk/geom"
	"traxtents/internal/scsi"
	"traxtents/internal/traxtent"
)

// ZoneInfo is one recovered zone.
type ZoneInfo struct {
	FirstCyl, LastCyl int
	SPT               int // physical sectors per track
}

// Result is the outcome of a successful characterization.
type Result struct {
	MaxLBN   int64
	Cyls     int
	Surfaces int
	Zones    []ZoneInfo
	Scheme   geom.SpareScheme
	SpareK   int
	Defects  []scsi.DefectEntry
	// Remapped[i] reports whether Defects[i] is handled by remapping
	// (true) or slipping (false).
	Remapped []bool

	Table        *traxtent.Table
	Translations int
}

// ErrUnknownScheme is returned when the expert rules cannot explain the
// observed layout; callers should use Fallback.
var ErrUnknownScheme = fmt.Errorf("dixtrac: sparing scheme not recognized")

type prober struct {
	t       *scsi.Target
	defects map[geom.PhysLoc]bool
}

// Characterize runs the five-step algorithm.
func Characterize(t *scsi.Target) (*Result, error) {
	t.ResetCounters()
	p := &prober{t: t, defects: make(map[geom.PhysLoc]bool)}

	// Step 1: capacity and nominal geometry, verified by translation.
	maxLBN, _ := t.ReadCapacity()
	cyls, surfaces := t.ModeGeometry()
	if err := p.verifyGeometry(maxLBN, cyls, surfaces); err != nil {
		return nil, err
	}

	// Step 2: defect lists.
	defects := t.ReadDefectList(true, true)
	for _, d := range defects {
		p.defects[d.Loc] = true
	}

	// Step 4 runs before the sparing rules that need zone boundaries:
	// physical SPT is independent of sparing.
	zones, err := p.findZones(cyls)
	if err != nil {
		return nil, err
	}

	// Step 3: sparing scheme expert rules.
	scheme, spareK, err := p.findScheme(zones, cyls, surfaces)
	if err != nil {
		return nil, err
	}

	// Step 5: classify each defect by back-translation.
	remapped, err := p.classifyDefects(defects)
	if err != nil {
		return nil, err
	}

	res := &Result{
		MaxLBN:   maxLBN,
		Cyls:     cyls,
		Surfaces: surfaces,
		Zones:    zones,
		Scheme:   scheme,
		SpareK:   spareK,
		Defects:  defects,
		Remapped: remapped,
	}
	table, err := res.reconstruct()
	if err != nil {
		return nil, err
	}
	res.Table = table
	if err := p.verifyTable(table, maxLBN); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownScheme, err)
	}
	res.Translations = t.TranslationCount()
	return res, nil
}

// verifyGeometry spot-checks the mode-page geometry with translations.
func (p *prober) verifyGeometry(maxLBN int64, cyls, surfaces int) error {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8; i++ {
		lbn := rng.Int63n(maxLBN + 1)
		loc, err := p.t.TranslateLBN(lbn)
		if err != nil {
			return err
		}
		if int(loc.Cyl) >= cyls || int(loc.Head) >= surfaces {
			return fmt.Errorf("dixtrac: translation %v exceeds nominal geometry %dx%d", loc, cyls, surfaces)
		}
	}
	return nil
}

// physSPT finds the physical sectors per track at a cylinder by binary
// searching the first invalid slot address.
func (p *prober) physSPT(cyl int) (int, error) {
	lo, hi := 1, 4096 // no disk in our era has >4096 sectors per track
	// Invariant: slot lo-1 valid, slot hi invalid.
	for lo < hi {
		mid := (lo + hi) / 2
		_, _, err := p.t.TranslatePhys(geom.PhysLoc{Cyl: int32(cyl), Head: 0, Slot: int32(mid)})
		if err != nil {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// findZones recovers zone boundaries by recursive subdivision: if two
// cylinders share an SPT, every cylinder between them is assumed to as
// well (zones are contiguous bands).
func (p *prober) findZones(cyls int) ([]ZoneInfo, error) {
	memo := make(map[int]int)
	spt := func(c int) (int, error) {
		if v, ok := memo[c]; ok {
			return v, nil
		}
		v, err := p.physSPT(c)
		if err != nil {
			return 0, err
		}
		memo[c] = v
		return v, nil
	}
	var zones []ZoneInfo
	var walk func(lo, hi, sptLo, sptHi int) error
	walk = func(lo, hi, sptLo, sptHi int) error {
		if sptLo == sptHi {
			// One zone (or an undetectable equal-SPT pair — identical for
			// every consumer of the table).
			if n := len(zones); n > 0 && zones[n-1].SPT == sptLo && zones[n-1].LastCyl == lo-1 {
				zones[n-1].LastCyl = hi
			} else {
				zones = append(zones, ZoneInfo{FirstCyl: lo, LastCyl: hi, SPT: sptLo})
			}
			return nil
		}
		if lo+1 == hi {
			if n := len(zones); n > 0 && zones[n-1].SPT == sptLo && zones[n-1].LastCyl == lo-1 {
				zones[n-1].LastCyl = lo
			} else {
				zones = append(zones, ZoneInfo{FirstCyl: lo, LastCyl: lo, SPT: sptLo})
			}
			zones = append(zones, ZoneInfo{FirstCyl: hi, LastCyl: hi, SPT: sptHi})
			return nil
		}
		mid := (lo + hi) / 2
		sptMid, err := spt(mid)
		if err != nil {
			return err
		}
		if err := walk(lo, mid, sptLo, sptMid); err != nil {
			return err
		}
		// Merge or extend handled inside; continue right half.
		return walk(mid, hi, sptMid, sptHi)
	}
	s0, err := spt(0)
	if err != nil {
		return nil, err
	}
	sN, err := spt(cyls - 1)
	if err != nil {
		return nil, err
	}
	if err := walk(0, cyls-1, s0, sN); err != nil {
		return nil, err
	}
	// Fix up overlaps from the two-sided recursion: ensure contiguity.
	fixed := zones[:1]
	for _, z := range zones[1:] {
		last := &fixed[len(fixed)-1]
		if z.SPT == last.SPT {
			if z.LastCyl > last.LastCyl {
				last.LastCyl = z.LastCyl
			}
			continue
		}
		z.FirstCyl = last.LastCyl + 1
		if z.FirstCyl > z.LastCyl {
			continue
		}
		fixed = append(fixed, z)
	}
	return fixed, nil
}

// defectFree reports whether a cylinder has no listed defects.
func (p *prober) defectFree(cyl int) bool {
	for loc := range p.defects {
		if int(loc.Cyl) == cyl {
			return false
		}
	}
	return true
}

// pickCleanCyl finds a defect-free cylinder near the middle of a zone.
func (p *prober) pickCleanCyl(z ZoneInfo) (int, error) {
	mid := (z.FirstCyl + z.LastCyl) / 2
	for d := 0; d <= z.LastCyl-z.FirstCyl; d++ {
		for _, c := range []int{mid - d, mid + d} {
			if c >= z.FirstCyl && c <= z.LastCyl && p.defectFree(c) {
				return c, nil
			}
		}
	}
	return 0, fmt.Errorf("dixtrac: no defect-free cylinder in zone %+v", z)
}

// tailHole returns how many slots at the physical end of the track hold
// no LBN (0 on a spare-free track).
func (p *prober) tailHole(cyl, head, spt int) (int, error) {
	k := 0
	for slot := spt - 1; slot >= 0; slot-- {
		_, ok, err := p.t.TranslatePhys(geom.PhysLoc{Cyl: int32(cyl), Head: int32(head), Slot: int32(slot)})
		if err != nil {
			return 0, err
		}
		if ok {
			return k, nil
		}
		k++
	}
	return k, nil // whole track empty
}

// trackEmpty probes three slots to decide whether a track holds any LBNs.
func (p *prober) trackEmpty(cyl, head, spt int) (bool, error) {
	for _, slot := range []int{0, spt / 2, spt - 1} {
		_, ok, err := p.t.TranslatePhys(geom.PhysLoc{Cyl: int32(cyl), Head: int32(head), Slot: int32(slot)})
		if err != nil {
			return false, err
		}
		if ok {
			return false, nil
		}
	}
	return true, nil
}

// findScheme applies the expert rules of step 3.
func (p *prober) findScheme(zones []ZoneInfo, cyls, surfaces int) (geom.SpareScheme, int, error) {
	z0 := zones[0]
	clean, err := p.pickCleanCyl(z0)
	if err != nil {
		return 0, 0, err
	}
	spt := z0.SPT

	// Rule 1/2: spares at the end of every track, or of the cylinder's
	// last track only.
	k0, err := p.tailHole(clean, 0, spt)
	if err != nil {
		return 0, 0, err
	}
	kLast, err := p.tailHole(clean, surfaces-1, spt)
	if err != nil {
		return 0, 0, err
	}
	switch {
	case k0 > 0 && k0 < spt:
		// Confirm on a second clean cylinder in another zone when there
		// is one.
		if len(zones) > 1 {
			if c2, err := p.pickCleanCyl(zones[len(zones)-1]); err == nil {
				k2, err := p.tailHole(c2, 0, zones[len(zones)-1].SPT)
				if err != nil {
					return 0, 0, err
				}
				if k2 != k0 {
					return 0, 0, ErrUnknownScheme
				}
			}
		}
		return geom.SparePerTrack, k0, nil
	case k0 == 0 && kLast > 0 && kLast < spt:
		return geom.SparePerCylinder, kLast, nil
	}

	// Rule 3: whole tracks reserved at the zone's end.
	emptyTracks := 0
	for i := 0; i < surfaces*2; i++ { // look back up to two cylinders
		cyl := z0.LastCyl - i/surfaces
		head := surfaces - 1 - i%surfaces
		if cyl < z0.FirstCyl {
			break
		}
		if !p.defectFree(cyl) {
			// Defects on the probe track would masquerade as spares;
			// bail to the fallback rather than guess.
			return 0, 0, ErrUnknownScheme
		}
		empty, err := p.trackEmpty(cyl, head, z0.SPT)
		if err != nil {
			return 0, 0, err
		}
		if !empty {
			break
		}
		emptyTracks++
	}
	if emptyTracks > 0 {
		return geom.SpareTrackPerZone, emptyTracks, nil
	}

	// Rule 4: whole cylinders reserved at the end of the disk.
	emptyCyls := 0
	zl := zones[len(zones)-1]
	for cyl := cyls - 1; cyl >= zl.FirstCyl; cyl-- {
		empty, err := p.trackEmpty(cyl, 0, zl.SPT)
		if err != nil {
			return 0, 0, err
		}
		if !empty {
			break
		}
		emptyCyls++
	}
	if emptyCyls > 0 {
		return geom.SpareCylAtEnd, emptyCyls, nil
	}
	return geom.SpareNone, 0, nil
}

// classifyDefects back-translates around each defect: for a slipped
// defect the LBN sequence simply bypasses the bad slot, so the LBN
// preceding its successor lives just before the defect; for a remapped
// defect that LBN translates to a spare sector somewhere else.
func (p *prober) classifyDefects(defects []scsi.DefectEntry) ([]bool, error) {
	out := make([]bool, len(defects))
	for i, d := range defects {
		after, afterLBN, err := p.nextLBNSlot(d.Loc)
		if err != nil {
			return nil, err
		}
		if after == (geom.PhysLoc{Cyl: -1}) || afterLBN == 0 {
			out[i] = false // defect at the very end of the mapped area
			continue
		}
		prevLoc, err := p.t.TranslateLBN(afterLBN - 1)
		if err != nil {
			return nil, err
		}
		// Slipped: the previous LBN sits on the same track just before
		// the defect (or on an earlier track). Remapped: it translates to
		// a distant spare slot — detectable because it is *after* the
		// defect position or on an unrelated track tail.
		out[i] = !physBefore(prevLoc, d.Loc)
	}
	return out, nil
}

// nextLBNSlot finds the first LBN-holding slot after loc in physical
// order, returning its location and LBN.
func (p *prober) nextLBNSlot(loc geom.PhysLoc) (geom.PhysLoc, int64, error) {
	cur := loc
	for probes := 0; probes < 4096; probes++ {
		cur.Slot++
		lbn, ok, err := p.t.TranslatePhys(cur)
		if err != nil {
			// Past the end of this track: next track.
			cur.Slot = -1
			cur.Head++
			if int(cur.Head) >= p.surfaces() {
				cur.Head = 0
				cur.Cyl++
				if int(cur.Cyl) >= p.cyls() {
					return geom.PhysLoc{Cyl: -1}, 0, nil
				}
			}
			continue
		}
		if ok {
			return cur, lbn, nil
		}
	}
	return geom.PhysLoc{Cyl: -1}, 0, nil
}

func (p *prober) surfaces() int { _, s := p.t.ModeGeometry(); return s }
func (p *prober) cyls() int     { c, _ := p.t.ModeGeometry(); return c }

// physBefore reports whether a precedes b in physical order.
func physBefore(a, b geom.PhysLoc) bool {
	if a.Cyl != b.Cyl {
		return a.Cyl < b.Cyl
	}
	if a.Head != b.Head {
		return a.Head < b.Head
	}
	return a.Slot < b.Slot
}

// reconstruct rebuilds the layout from the learned parameters and
// returns its track boundary table.
func (r *Result) reconstruct() (*traxtent.Table, error) {
	zones := make([]geom.Zone, len(r.Zones))
	for i, z := range r.Zones {
		zones[i] = geom.Zone{FirstCyl: z.FirstCyl, LastCyl: z.LastCyl, SPT: z.SPT}
	}
	dl := make(geom.DefectList, len(r.Defects))
	for i, d := range r.Defects {
		dl[i] = geom.Defect{
			Cyl: int(d.Loc.Cyl), Head: int(d.Loc.Head), Slot: int(d.Loc.Slot),
			Grown: r.Remapped[i],
		}
	}
	g := &geom.Geometry{
		Name:       "dixtrac-reconstruction",
		Surfaces:   r.Surfaces,
		Cyls:       r.Cyls,
		SectorSize: 512,
		Zones:      zones,
		Scheme:     r.Scheme,
		SpareK:     r.SpareK,
		Defects:    dl,
	}
	lay, err := geom.Build(g)
	if err != nil {
		return nil, fmt.Errorf("dixtrac: reconstruction failed: %w", err)
	}
	return traxtent.New(lay.Boundaries())
}

// verifyTable spot-checks the reconstructed table: the first LBN of a
// sample of traxtents must translate to slot-index zero of a fresh
// track, and capacity must agree.
func (p *prober) verifyTable(table *traxtent.Table, maxLBN int64) error {
	_, end := table.Range()
	if end != maxLBN+1 {
		return fmt.Errorf("capacity mismatch: table %d, disk %d", end, maxLBN+1)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 25; i++ {
		ti := rng.Intn(table.NumTracks())
		e := table.Index(ti)
		loc, err := p.t.TranslateLBN(e.Start)
		if err != nil {
			return err
		}
		if e.Start > 0 {
			prev, err := p.t.TranslateLBN(e.Start - 1)
			if err != nil {
				return err
			}
			if prev.Cyl == loc.Cyl && prev.Head == loc.Head {
				return fmt.Errorf("LBN %d not a track boundary (same track as predecessor)", e.Start)
			}
		}
	}
	return nil
}
