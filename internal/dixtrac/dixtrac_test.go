package dixtrac

import (
	"math/rand"
	"testing"

	"traxtents/internal/disk/geom"
	"traxtents/internal/disk/mech"
	"traxtents/internal/disk/model"
	"traxtents/internal/disk/sim"
	"traxtents/internal/scsi"
)

// buildTarget makes a SCSI target over an arbitrary geometry.
func buildTarget(t *testing.T, g *geom.Geometry) *scsi.Target {
	t.Helper()
	l, err := geom.Build(g)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	m, err := mech.New(mech.Spec{
		RPM: 10000, HeadSwitch: 0.8, WriteSettle: 1.0,
		SeekSingle: 0.8, SeekAvg: 4.7, SeekFull: 10, ZeroLatency: true,
	}, g.Cyls)
	if err != nil {
		t.Fatalf("mech.New: %v", err)
	}
	return scsi.NewTarget(sim.New(l, m, sim.Config{}))
}

func smallGeom(scheme geom.SpareScheme, k int, defects geom.DefectList) *geom.Geometry {
	return &geom.Geometry{
		Name:       "dixtrac-test",
		Surfaces:   3,
		Cyls:       60,
		SectorSize: 512,
		Zones: []geom.Zone{
			{FirstCyl: 0, LastCyl: 19, SPT: 40, TrackSkew: 4, CylSkew: 6},
			{FirstCyl: 20, LastCyl: 39, SPT: 32, TrackSkew: 3, CylSkew: 5},
			{FirstCyl: 40, LastCyl: 59, SPT: 24, TrackSkew: 3, CylSkew: 4},
		},
		Scheme:  scheme,
		SpareK:  k,
		Defects: defects,
	}
}

func boundariesEqual(t *testing.T, got, want []int64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d boundaries, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: boundary %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

// TestCharacterizeAllSchemes: the five-step algorithm recovers the exact
// track boundary table for every sparing scheme, with and without
// defects.
func TestCharacterizeAllSchemes(t *testing.T) {
	cases := []struct {
		name   string
		scheme geom.SpareScheme
		k      int
	}{
		{"none", geom.SpareNone, 0},
		{"per-track", geom.SparePerTrack, 2},
		{"per-cylinder", geom.SparePerCylinder, 3},
		{"track-per-zone", geom.SpareTrackPerZone, 2},
		{"cyl-at-end", geom.SpareCylAtEnd, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := smallGeom(c.scheme, c.k, nil)
			tgt := buildTarget(t, g)
			res, err := Characterize(tgt)
			if err != nil {
				t.Fatalf("Characterize: %v", err)
			}
			if res.Scheme != c.scheme {
				t.Fatalf("scheme = %v, want %v", res.Scheme, c.scheme)
			}
			if c.scheme != geom.SpareNone && res.SpareK != c.k {
				t.Fatalf("SpareK = %d, want %d", res.SpareK, c.k)
			}
			truth := tgt.Device().(*sim.Disk).Lay.Boundaries()
			boundariesEqual(t, res.Table.Boundaries(), truth, c.name)
		})
	}
}

// TestCharacterizeWithDefects covers slipped and remapped defects,
// including the step-5 classification.
func TestCharacterizeWithDefects(t *testing.T) {
	defects := geom.DefectList{
		{Cyl: 5, Head: 1, Slot: 10, Grown: false}, // slipped
		{Cyl: 12, Head: 0, Slot: 3, Grown: true},  // remapped
		{Cyl: 30, Head: 2, Slot: 20, Grown: false},
		{Cyl: 45, Head: 1, Slot: 5, Grown: true},
	}
	g := smallGeom(geom.SparePerCylinder, 3, defects)
	tgt := buildTarget(t, g)
	res, err := Characterize(tgt)
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	truth := tgt.Device().(*sim.Disk).Lay.Boundaries()
	boundariesEqual(t, res.Table.Boundaries(), truth, "defects")
	// Classification matches the geometry's handling.
	for i, d := range res.Defects {
		want := d.Grown // grown defects were remapped (spares available)
		if res.Remapped[i] != want {
			t.Errorf("defect %v classified remapped=%v, want %v", d.Loc, res.Remapped[i], want)
		}
	}
}

// TestCharacterizeZoneRecovery: recovered zones match the real ones.
func TestCharacterizeZoneRecovery(t *testing.T) {
	g := smallGeom(geom.SpareNone, 0, nil)
	tgt := buildTarget(t, g)
	res, err := Characterize(tgt)
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	if len(res.Zones) != 3 {
		t.Fatalf("recovered %d zones, want 3: %+v", len(res.Zones), res.Zones)
	}
	for i, z := range res.Zones {
		want := g.Zones[i]
		if z.FirstCyl != want.FirstCyl || z.LastCyl != want.LastCyl || z.SPT != want.SPT {
			t.Errorf("zone %d = %+v, want %+v", i, z, want)
		}
	}
}

// TestCharacterizeRealModels runs the full algorithm against the paper's
// evaluation disks and checks the translation budget (§4.1.2: fewer than
// 30,000 translations).
func TestCharacterizeRealModels(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size disks in -short mode")
	}
	for _, name := range []string{"Quantum-Atlas10K", "Quantum-Atlas10KII"} {
		m := model.MustGet(name)
		d, err := m.NewDisk(sim.Config{})
		if err != nil {
			t.Fatalf("%s: NewDisk: %v", name, err)
		}
		tgt := scsi.NewTarget(d)
		res, err := Characterize(tgt)
		if err != nil {
			t.Fatalf("%s: Characterize: %v", name, err)
		}
		truth := d.Lay.Boundaries()
		boundariesEqual(t, res.Table.Boundaries(), truth, name)
		if res.Translations >= 30000 {
			t.Errorf("%s: %d translations, want < 30000", name, res.Translations)
		}
		t.Logf("%s: %d tracks, %d translations", name, res.Table.NumTracks(), res.Translations)
	}
}

// TestFallbackMatchesTruth: the expertise-free walk recovers the exact
// boundaries on every scheme, costing about 2.0-2.3 translations per
// track.
func TestFallbackMatchesTruth(t *testing.T) {
	for _, scheme := range []struct {
		s geom.SpareScheme
		k int
	}{
		{geom.SpareNone, 0}, {geom.SparePerTrack, 2}, {geom.SparePerCylinder, 3},
		{geom.SpareTrackPerZone, 2}, {geom.SpareCylAtEnd, 2},
	} {
		defects := geom.DefectList{
			{Cyl: 7, Head: 0, Slot: 12, Grown: false},
			{Cyl: 25, Head: 1, Slot: 8, Grown: true},
		}
		g := smallGeom(scheme.s, scheme.k, defects)
		tgt := buildTarget(t, g)
		table, err := Fallback(tgt)
		if err != nil {
			t.Fatalf("%v: Fallback: %v", scheme.s, err)
		}
		// The fallback discovers *LBN-range* boundaries: tracks with zero
		// LBNs are invisible (they hold no range), which matches the
		// ground-truth Boundaries() exactly.
		truth := tgt.Device().(*sim.Disk).Lay.Boundaries()
		boundariesEqual(t, table.Boundaries(), truth, scheme.s.String())
		perTrack := float64(tgt.TranslationCount()) / float64(table.NumTracks())
		if perTrack > 3.0 {
			t.Errorf("%v: %.2f translations/track, want about 2.0-2.3", scheme.s, perTrack)
		}
	}
}

// TestFallbackOnRealModel checks the per-track translation cost on a
// full-size disk.
func TestFallbackOnRealModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size disk in -short mode")
	}
	m := model.MustGet("Quantum-Atlas10K")
	d, err := m.NewDisk(sim.Config{})
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	tgt := scsi.NewTarget(d)
	table, err := Fallback(tgt)
	if err != nil {
		t.Fatalf("Fallback: %v", err)
	}
	boundariesEqual(t, table.Boundaries(), d.Lay.Boundaries(), "atlas10k")
	perTrack := float64(tgt.TranslationCount()) / float64(table.NumTracks())
	t.Logf("fallback: %d tracks, %.2f translations/track", table.NumTracks(), perTrack)
	if perTrack > 2.5 {
		t.Errorf("%.2f translations/track, paper reports 2.0-2.3", perTrack)
	}
}

// TestCharacterizeRandomGeometries is the property-style test: random
// geometry within the supported scheme family must always reconstruct
// exactly or fail loudly (never silently wrong).
func TestCharacterizeRandomGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 15; trial++ {
		scheme := geom.SpareScheme(rng.Intn(5))
		k := 0
		if scheme != geom.SpareNone {
			k = 1 + rng.Intn(3)
		}
		g := smallGeom(scheme, k, nil)
		g.Defects = geom.RandomDefects(g, rng.Intn(6), 0.5, int64(trial))
		tgt := buildTarget(t, g)
		res, err := Characterize(tgt)
		if err != nil {
			// Loud failure is acceptable (fallback path); silent
			// misreconstruction is not.
			t.Logf("trial %d (%v): fell back: %v", trial, scheme, err)
			table, ferr := Fallback(tgt)
			if ferr != nil {
				t.Fatalf("trial %d: fallback also failed: %v", trial, ferr)
			}
			boundariesEqual(t, table.Boundaries(), tgt.Device().(*sim.Disk).Lay.Boundaries(), "fallback")
			continue
		}
		boundariesEqual(t, res.Table.Boundaries(), tgt.Device().(*sim.Disk).Lay.Boundaries(), "characterize")
	}
}
