// videobench regenerates the video-server results: Figure 9 (startup
// latency vs concurrent streams on a 10-disk array) and the §5.4.2
// hard-real-time admission numbers.
//
// Usage:
//
//	videobench -fig9
//	videobench -hard
//	videobench -soft      streams/disk at one-track I/Os (70 vs 45)
//	videobench -rounds N  Monte-Carlo rounds (default 400)
package main

import (
	"flag"
	"fmt"
	"os"

	"traxtents"
)

func main() {
	fig9 := flag.Bool("fig9", false, "startup latency vs streams")
	hard := flag.Bool("hard", false, "hard-real-time admission")
	soft := flag.Bool("soft", false, "soft-real-time streams per disk")
	rounds := flag.Int("rounds", 400, "Monte-Carlo rounds per point")
	flag.Parse()
	if !*fig9 && !*hard && !*soft {
		*fig9, *hard, *soft = true, true, true
	}

	s, err := traxtents.NewVideoServer(traxtents.VideoConfig{Rounds: *rounds, Seed: 7})
	if err != nil {
		fail(err)
	}
	ts := s.TrackSectors()
	fmt.Printf("server: %s; track = %d sectors (%d KB)\n\n", s.Describe(), ts, ts*512/1024)

	if *soft {
		fmt.Println("== §5.4.1: streams per disk at one-track I/Os, 99.99% deadlines (paper: 70 vs 45) ==")
		al, err := s.MaxStreamsSoft(ts, true, 90)
		if err != nil {
			fail(err)
		}
		un, err := s.MaxStreamsSoft(ts, false, 90)
		if err != nil {
			fail(err)
		}
		fmt.Printf("aligned: %d streams/disk, unaligned: %d (+%.0f%%)\n\n", al, un,
			(float64(al)/float64(un)-1)*100)
	}
	if *hard {
		fmt.Println("== §5.4.2: hard-real-time admission (paper: 67 vs 36 at 264 KB; 75 vs 52 at 528 KB) ==")
		for _, k := range []int{1, 2} {
			alV, alE, err := s.HardRealTime(k*ts, true)
			if err != nil {
				fail(err)
			}
			unV, unE, err := s.HardRealTime(k*ts, false)
			if err != nil {
				fail(err)
			}
			fmt.Printf("I/O %4d KB: aligned %3d streams (%.0f%% eff), unaligned %3d (%.0f%% eff)\n",
				k*ts*512/1024, alV, alE*100, unV, unE*100)
		}
		fmt.Println()
	}
	if *fig9 {
		fmt.Println("== Figure 9: worst-case startup latency vs concurrent streams (10-disk array) ==")
		fmt.Printf("%18s %16s %16s\n", "streams (array)", "aligned", "unaligned")
		for _, v := range []int{20, 30, 40, 50, 55, 60, 65, 70} {
			latA, _, okA, err := s.StartupLatency(v, true, 24*ts)
			if err != nil {
				fail(err)
			}
			latU, _, okU, err := s.StartupLatency(v, false, 24*ts)
			if err != nil {
				fail(err)
			}
			a, u := "unsupportable", "unsupportable"
			if okA {
				a = fmt.Sprintf("%13.1f s", latA/1000)
			}
			if okU {
				u = fmt.Sprintf("%13.1f s", latU/1000)
			}
			fmt.Printf("%18d %16s %16s\n", v*s.Config().Disks, a, u)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "videobench:", err)
	os.Exit(1)
}
