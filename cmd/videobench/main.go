// videobench regenerates the video-server results: Figure 9 (startup
// latency vs concurrent streams on a 10-disk array), the §5.4.2
// hard-real-time admission numbers, and the application-level studies
// that run the server over the composed host stack (cache → scheduling
// queue → disk).
//
// Usage:
//
//	videobench -fig9
//	videobench -hard
//	videobench -soft       streams/disk at one-track I/Os (70 vs 45)
//	videobench -stack      admission & mixed workload over the host stack
//	videobench -study      the repro.VideoStudy sweep (golden snapshot)
//	videobench -rounds N   Monte-Carlo rounds (default 400)
//
// The stack composition is shared by -stack and single measurements:
//
//	-streams N     stream count for the mixed-workload measurement
//	-background R  background small-I/O arrivals per second
//	-sched NAME    queue scheduler (fcfs|sstf|clook|traxtent)
//	-qdepth N      queue depth (scheduler reordering window)
//	-cachemb MB    host-cache budget
//	-hotset K      bound stream placement to the first K tracks
//
// The committed golden snapshot internal/repro/testdata/golden/
// video_study.json regenerates exactly with:
//
//	videobench -study -rounds 50 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"traxtents"
	"traxtents/internal/repro"
)

func main() {
	fig9 := flag.Bool("fig9", false, "startup latency vs streams")
	hard := flag.Bool("hard", false, "hard-real-time admission")
	soft := flag.Bool("soft", false, "soft-real-time streams per disk")
	stackMode := flag.Bool("stack", false, "admission and mixed workload over the composed host stack")
	study := flag.Bool("study", false, "repro.VideoStudy sweep: streams sustained & background response vs cache size")
	rounds := flag.Int("rounds", 400, "Monte-Carlo rounds per point")
	seed := flag.Int64("seed", 7, "Monte-Carlo seed")
	streams := flag.Int("streams", 24, "stream count for the -stack mixed measurement")
	background := flag.Float64("background", 100, "background small-I/O arrivals per second (-stack)")
	schedName := flag.String("sched", "clook", "queue scheduler: fcfs|sstf|clook|traxtent (-stack)")
	qdepth := flag.Int("qdepth", 8, "queue depth (-stack)")
	cachemb := flag.Float64("cachemb", 4, "host-cache budget in MB (-stack)")
	hotset := flag.Int("hotset", 16, "hot-set tracks bounding stream placement (-stack; 0 = whole first zone)")
	flag.Parse()
	if !*fig9 && !*hard && !*soft && !*stackMode && !*study {
		*fig9, *hard, *soft = true, true, true
	}

	if *study {
		runStudy(*rounds, *seed)
		return
	}
	if *stackMode {
		runStack(*rounds, *seed, *streams, *background, *schedName, *qdepth, *cachemb, *hotset)
		return
	}

	s, err := traxtents.NewVideoServer(traxtents.VideoConfig{Rounds: *rounds, Seed: *seed})
	if err != nil {
		fail(err)
	}
	ts := s.TrackSectors()
	fmt.Printf("server: %s; track = %d sectors (%d KB)\n\n", s.Describe(), ts, ts*512/1024)

	if *soft {
		fmt.Println("== §5.4.1: streams per disk at one-track I/Os, 99.99% deadlines (paper: 70 vs 45) ==")
		al, err := s.MaxStreamsSoft(ts, true, 90)
		if err != nil {
			fail(err)
		}
		un, err := s.MaxStreamsSoft(ts, false, 90)
		if err != nil {
			fail(err)
		}
		fmt.Printf("aligned: %d streams/disk, unaligned: %d (+%.0f%%)\n\n", al, un,
			(float64(al)/float64(un)-1)*100)
	}
	if *hard {
		fmt.Println("== §5.4.2: hard-real-time admission (paper: 67 vs 36 at 264 KB; 75 vs 52 at 528 KB) ==")
		for _, k := range []int{1, 2} {
			alV, alE, err := s.HardRealTime(k*ts, true)
			if err != nil {
				fail(err)
			}
			unV, unE, err := s.HardRealTime(k*ts, false)
			if err != nil {
				fail(err)
			}
			fmt.Printf("I/O %4d KB: aligned %3d streams (%.0f%% eff), unaligned %3d (%.0f%% eff)\n",
				k*ts*512/1024, alV, alE*100, unV, unE*100)
		}
		fmt.Println()
	}
	if *fig9 {
		fmt.Println("== Figure 9: worst-case startup latency vs concurrent streams (10-disk array) ==")
		fmt.Printf("%18s %16s %16s\n", "streams (array)", "aligned", "unaligned")
		for _, v := range []int{20, 30, 40, 50, 55, 60, 65, 70} {
			latA, _, okA, err := s.StartupLatency(v, true, 24*ts)
			if err != nil {
				fail(err)
			}
			latU, _, okU, err := s.StartupLatency(v, false, 24*ts)
			if err != nil {
				fail(err)
			}
			a, u := "unsupportable", "unsupportable"
			if okA {
				a = fmt.Sprintf("%13.1f s", latA/1000)
			}
			if okU {
				u = fmt.Sprintf("%13.1f s", latU/1000)
			}
			fmt.Printf("%18d %16s %16s\n", v*s.Config().Disks, a, u)
		}
	}
}

// runStack measures admission and the mixed workload for one explicit
// stack composition, aligned vs unaligned.
func runStack(rounds int, seed int64, streams int, background float64, schedName string, qdepth int, cachemb float64, hotset int) {
	cfg := traxtents.VideoConfig{
		Rounds:       rounds,
		Seed:         seed,
		HotSetTracks: hotset,
		Stack:        traxtents.StackConfig{Depth: qdepth, Scheduler: schedName, CacheMB: cachemb},
	}
	if background > 0 {
		cfg.Background = traxtents.VideoBackground{RatePerSec: background}
	}
	s, err := traxtents.NewVideoServer(cfg)
	if err != nil {
		fail(err)
	}
	ts := s.TrackSectors()
	fmt.Printf("server: %s over stack [%s], hot set %d tracks, background %g req/s\n\n",
		s.Describe(), cfg.Stack, hotset, background)
	fmt.Printf("== mixed workload at %d streams (one track per round, %d KB) ==\n", streams, ts*512/1024)
	fmt.Printf("%10s %12s %10s %12s %12s %8s\n", "layout", "round q ms", "hit rate", "bg mean ms", "bg p95 ms", "bg reqs")
	for _, aligned := range []bool{true, false} {
		met, err := s.MeasureRounds(streams, ts, aligned)
		if err != nil {
			fail(err)
		}
		name := "aligned"
		if !aligned {
			name = "unaligned"
		}
		fmt.Printf("%10s %12.2f %9.1f%% %12.2f %12.2f %8d\n",
			name, met.RoundQMs, met.CacheHitRate*100, met.BgMeanMs, met.BgP95Ms, met.BgRequests)
	}
}

// runStudy regenerates the repro.VideoStudy sweep — the same cells the
// golden snapshot pins.
func runStudy(rounds int, seed int64) {
	pts, err := repro.VideoStudy(rounds, seed, nil)
	if err != nil {
		fail(err)
	}
	fmt.Println("== VideoStudy: streams sustained & mixed-workload response vs host-cache size ==")
	fmt.Printf("%8s %16s %18s %14s %16s %12s %14s\n",
		"cache MB", "aligned streams", "unaligned streams", "aligned bg ms", "unaligned bg ms", "aligned hit", "unaligned hit")
	for _, p := range pts {
		fmt.Printf("%8g %16.0f %18.0f %14.2f %16.2f %11.1f%% %13.1f%%\n",
			p.X,
			p.Values["aligned streams"], p.Values["unaligned streams"],
			p.Values["aligned bg mean"], p.Values["unaligned bg mean"],
			p.Values["aligned hit"]*100, p.Values["unaligned hit"]*100)
	}
	fmt.Println("\ncache-off row: the spindle is the bottleneck and track alignment decides admission;")
	fmt.Println("with a cache, the sorted per-round elevator streams over cached lines (the hot set")
	fmt.Println("is never fully resident — note the hit rates), the host port saturates instead of")
	fmt.Println("the spindle, and both layouts converge.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "videobench:", err)
	os.Exit(1)
}
