// traxtentctl extracts and inspects track boundary tables from simulated
// disks, exercising both detection methods of the paper's §4.1 and
// verifying them against the simulator's ground truth.
//
// Usage:
//
//	traxtentctl -disk Quantum-Atlas10KII -method scsi
//	traxtentctl -disk Quantum-Atlas10K   -method general
//	traxtentctl -disk Quantum-Atlas10K   -method fallback
//	traxtentctl -list
package main

import (
	"flag"
	"fmt"
	"os"

	"traxtents"
)

func main() {
	disk := flag.String("disk", "Quantum-Atlas10KII", "disk model")
	method := flag.String("method", "scsi", "extraction method: scsi, fallback, or general")
	list := flag.Bool("list", false, "list disk models")
	noise := flag.Float64("noise", 0, "host timing noise sd in ms (general method)")
	samples := flag.Int("samples", 1, "timing samples per probe (general method)")
	flag.Parse()

	if *list {
		for _, n := range traxtents.DiskModels() {
			fmt.Println(n)
		}
		return
	}
	m, err := traxtents.DiskModel(*disk)
	if err != nil {
		fail(err)
	}
	d, err := traxtents.NewDisk(m, traxtents.WithHostNoise(*noise))
	if err != nil {
		fail(err)
	}
	truth, err := traxtents.GroundTruthTable(d)
	if err != nil {
		fail(err)
	}

	var table *traxtents.Table
	switch *method {
	case "scsi":
		tgt := traxtents.NewSCSITarget(d)
		res, err := traxtents.Characterize(tgt)
		if err != nil {
			fmt.Println("expert characterization failed, using fallback:", err)
			if table, err = traxtents.CharacterizeFallback(tgt); err != nil {
				fail(err)
			}
		} else {
			table = res.Table
			fmt.Printf("scheme: %v (K=%d), zones: %d, defects: %d, translations: %d\n",
				res.Scheme, res.SpareK, len(res.Zones), len(res.Defects), res.Translations)
		}
	case "fallback":
		tgt := traxtents.NewSCSITarget(d)
		if table, err = traxtents.CharacterizeFallback(tgt); err != nil {
			fail(err)
		}
		fmt.Printf("translations: %d (%.2f per track)\n", tgt.TranslationCount(),
			float64(tgt.TranslationCount())/float64(table.NumTracks()))
	case "general":
		rep, err := traxtents.ExtractGeneral(d, traxtents.ExtractOptions{Samples: *samples})
		if err != nil {
			fail(err)
		}
		table = rep.Table
		fmt.Printf("reads: %d, simulated time: %.1f minutes\n", rep.Reads, rep.SimulatedMs/60000)
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}

	first, end := table.Range()
	fmt.Printf("disk: %s\ntracks: %d, LBNs [%d,%d), mean track %.1f sectors (%.1f KB)\n",
		*disk, table.NumTracks(), first, end, table.MeanTrackLen(), table.MeanTrackLen()*512/1024)

	// Verify against the layout's ground truth.
	got, want := table.Boundaries(), truth.Boundaries()
	if len(got) != len(want) {
		fmt.Printf("VERIFY: MISMATCH (%d boundaries, truth has %d)\n", len(got), len(want))
		os.Exit(1)
	}
	for i := range want {
		if got[i] != want[i] {
			fmt.Printf("VERIFY: MISMATCH at boundary %d: %d != %d\n", i, got[i], want[i])
			os.Exit(1)
		}
	}
	fmt.Println("VERIFY: exact match with ground truth")

	enc, err := table.MarshalBinary()
	if err != nil {
		fail(err)
	}
	fmt.Printf("encoded table: %d bytes (%.2f bytes/track)\n", len(enc),
		float64(len(enc))/float64(table.NumTracks()))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traxtentctl:", err)
	os.Exit(1)
}
