// tracebench records, converts, inspects, and bulk-replays block
// traces in the compact binary trace format (.trx). A million-record
// capture streams through the full host stack (cache → scheduling
// queue → device) in bounded memory with streaming statistics only —
// the CLI face of the replay pipeline gated by BENCH_replay.json.
//
// Usage:
//
//	tracebench -record t.trx -n 1000000 -disk Quantum-Atlas10KII -rate 2000
//	tracebench -convert blkparse.txt -o t.trx
//	tracebench -inspect t.trx
//	tracebench -tojson t.trx            (binary → JSON on stdout)
//	tracebench -replay t.trx            (strict replay over the capture itself)
//	tracebench -replay t.trx -disk Quantum-Atlas10K -sched clook -qdepth 8
//	tracebench -replay t.trx -fleet 16  (round-robin across 16 spindles, one event core)
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"traxtents"
)

func main() {
	record := flag.String("record", "", "record a synthetic workload to this binary trace file")
	convert := flag.String("convert", "", "convert blkparse text output (file or - for stdin) to binary")
	out := flag.String("o", "trace.trx", "output file for -convert")
	inspect := flag.String("inspect", "", "summarize a binary trace file")
	tojson := flag.String("tojson", "", "re-encode a binary trace as JSON on stdout")
	replay := flag.String("replay", "", "bulk-replay a binary trace through the host stack")

	n := flag.Int("n", 1_000_000, "requests to record")
	disk := flag.String("disk", "", "disk model to record against or replay onto (default: strict replay of the capture)")
	rate := flag.Float64("rate", 2000, "arrival rate in req/s (-record, and -replay of traces without timestamps)")
	seed := flag.Int64("seed", 1, "workload seed")
	sched := flag.String("sched", "fcfs", "replay scheduler: fcfs, sstf, clook, traxtent")
	qdepth := flag.Int("qdepth", 1, "replay queue depth")
	cachemb := flag.Float64("cachemb", 0, "replay host-cache budget in MB")
	window := flag.Int("window", 4096, "replay submit/drain window (bounds memory)")
	speedup := flag.Float64("speedup", 1, "compress recorded arrival times by this factor")
	fleet := flag.Int("fleet", 0, "replay round-robin across this many spindles on one event core")
	flag.Parse()

	var err error
	switch {
	case *record != "":
		err = doRecord(*record, *n, *disk, *rate, *seed)
	case *convert != "":
		err = doConvert(*convert, *out)
	case *inspect != "":
		err = doInspect(*inspect)
	case *tojson != "":
		err = doToJSON(*tojson)
	case *replay != "" && *fleet > 0:
		err = doFleet(*replay, *disk, *fleet, *sched, *qdepth)
	case *replay != "":
		err = doReplay(*replay, *disk, *sched, *qdepth, *cachemb, *window, *speedup, *rate, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracebench:", err)
		os.Exit(1)
	}
}

// doRecord captures a synthetic random workload against a simulated
// disk, streaming records to the output as they are served — the
// capture never lives in memory.
func doRecord(path string, n int, disk string, rate float64, seed int64) error {
	if disk == "" {
		disk = "Quantum-Atlas10KII"
	}
	m, err := traxtents.DiskModel(disk)
	if err != nil {
		return err
	}
	d, err := traxtents.NewDisk(m)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// The header identity comes from a zero-record Recorder snapshot;
	// the records themselves stream straight to the writer, so the
	// capture never lives in memory.
	hdr := traxtents.NewRecorder(d).Trace()
	w, err := traxtents.NewTraceWriter(f, hdr)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	at := 0.0
	for i := 0; i < n; i++ {
		req := traxtents.Request{
			LBN:     rng.Int63n(d.Capacity() - 256),
			Sectors: 8 << uint(rng.Intn(4)),
			Write:   rng.Intn(3) == 0,
		}
		res, err := d.Serve(at, req)
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		if err := w.Write(traxtents.TraceRecord{
			LBN: req.LBN, Sectors: req.Sectors, Write: req.Write,
			Issue: at, Service: res.Done - res.Start,
		}); err != nil {
			return err
		}
		at += rng.ExpFloat64() / (rate / 1000)
	}
	if err := w.Close(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d requests against %s: %s (%d bytes, %.2f bytes/record)\n",
		n, disk, path, st.Size(), float64(st.Size())/float64(n))
	return f.Close()
}

func doConvert(in, out string) error {
	src := os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	tr, stats, err := traxtents.ParseBlkparse(src, traxtents.BlkparseOptions{Name: in})
	if err != nil {
		return err
	}
	data, err := traxtents.EncodeTraceBinary(tr)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d lines -> %d records (%d unmatched, %d still pending, %d skipped)\n",
		in, stats.Lines, stats.Records, stats.Unmatched, stats.Pending, stats.Skipped)
	fmt.Printf("%s: %d bytes (%.2f bytes/record)\n", out, len(data), float64(len(data))/float64(len(tr.Records)))
	return nil
}

// doInspect streams the trace — header plus one pass over the records
// — without materializing it.
func doInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := traxtents.NewTraceReader(f)
	if err != nil {
		return err
	}
	hdr := r.Header()
	fmt.Printf("name: %q\ncapacity: %d sectors x %d bytes\nrotation: %g ms\ntrack boundaries: %d\n",
		hdr.Name, hdr.Capacity, hdr.SectorSize, hdr.RotationPeriod, len(hdr.Boundaries))
	var reads, writes int
	var sectors int64
	var svcSum, span float64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if rec.Write {
			writes++
		} else {
			reads++
		}
		sectors += int64(rec.Sectors)
		svcSum += rec.Service
		span = rec.Issue
	}
	n := reads + writes
	if n == 0 {
		fmt.Println("records: 0")
		return nil
	}
	fmt.Printf("records: %d (%d reads, %d writes)\n", n, reads, writes)
	fmt.Printf("mean size: %.1f sectors, mean service: %.3f ms, span: %.1f ms\n",
		float64(sectors)/float64(n), svcSum/float64(n), span)
	return nil
}

func doToJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	tr, err := traxtents.DecodeTraceBinary(data)
	if err != nil {
		return err
	}
	j, err := tr.Encode()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(j, '\n'))
	return err
}

// loadTrace reads a whole binary trace (replay needs the records
// resident anyway — the request and offset tables are precomputed).
func loadTrace(path string) (traxtents.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return traxtents.Trace{}, err
	}
	return traxtents.DecodeTraceBinary(data)
}

// replayBase builds the device the trace replays onto: the capture
// itself (a strict trace device) by default, or a named disk model.
func replayBase(tr traxtents.Trace, disk string) (traxtents.Device, string, error) {
	if disk == "" {
		p, err := traxtents.NewTraceDevice(tr, traxtents.StrictReplay())
		return p, "strict capture replay", err
	}
	m, err := traxtents.DiskModel(disk)
	if err != nil {
		return nil, "", err
	}
	d, err := traxtents.NewDisk(m)
	if err != nil {
		return nil, "", err
	}
	if tr.Capacity > d.Capacity() {
		return nil, "", fmt.Errorf("trace capacity %d exceeds %s capacity %d", tr.Capacity, disk, d.Capacity())
	}
	return d, disk, nil
}

func doReplay(path, disk, schedName string, qdepth int, cachemb float64, window int, speedup, rate float64, seed int64) error {
	tr, err := loadTrace(path)
	if err != nil {
		return err
	}
	base, baseName, err := replayBase(tr, disk)
	if err != nil {
		return err
	}
	st, err := traxtents.StackConfig{Depth: qdepth, Scheduler: schedName, CacheMB: cachemb}.Build(base)
	if err != nil {
		return err
	}
	r, err := traxtents.NewTraceReplay(st, tr, traxtents.ReplayConfig{
		Window: window, Speedup: speedup, RatePerSec: rate, Seed: seed,
	})
	if err != nil {
		return err
	}
	m, err := r.Run()
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d requests onto %s (%s depth %d, cache %g MB, window %d)\n",
		m.Requests, baseName, schedName, qdepth, cachemb, window)
	fmt.Printf("makespan: %.1f ms, throughput: %.0f IOPS, cache hit rate: %.1f%%\n",
		m.MakespanMs, m.ThroughputIOPS, m.CacheHitRate*100)
	fmt.Printf("response ms: mean %.3f  p50 %.3f  p99 %.3f  p99.99 %.3f  max %.3f\n",
		m.MeanResponseMs, m.P50ResponseMs, m.P99ResponseMs, m.P9999ResponseMs, m.MaxResponseMs)
	return nil
}

// doFleet partitions the capture round-robin across n spindles (each a
// fresh instance of the replay base) and replays on one event core.
func doFleet(path, disk string, n int, schedName string, qdepth int) error {
	tr, err := loadTrace(path)
	if err != nil {
		return err
	}
	per := len(tr.Records) / n
	if per == 0 {
		return fmt.Errorf("%d records cannot fill %d spindles", len(tr.Records), n)
	}
	parts := make([]traxtents.Trace, n)
	qs := make([]*traxtents.QueuedDevice, n)
	for s := range parts {
		parts[s] = tr
		parts[s].Records = make([]traxtents.TraceRecord, 0, per)
	}
	for i, rec := range tr.Records[:per*n] {
		s := i % n
		parts[s].Records = append(parts[s].Records, rec)
	}
	for s := range qs {
		base, _, err := replayBase(parts[s], disk)
		if err != nil {
			return fmt.Errorf("spindle %d: %w", s, err)
		}
		sch, err := traxtents.SchedulerByName(schedName, base)
		if err != nil {
			return err
		}
		qs[s], err = traxtents.NewQueuedDevice(base, traxtents.WithQueueDepth(qdepth), traxtents.WithScheduler(sch))
		if err != nil {
			return err
		}
	}
	f, err := traxtents.NewTraceFleet(qs, parts)
	if err != nil {
		return err
	}
	m, err := f.Run()
	if err != nil {
		return err
	}
	if dropped := len(tr.Records) - per*n; dropped > 0 {
		fmt.Printf("note: dropped %d trailing records to keep partitions equal\n", dropped)
	}
	fmt.Printf("fleet: %d spindles, %d requests, %d events, makespan %.1f ms\n",
		m.Spindles, m.Requests, m.Events, m.MakespanMs)
	fmt.Printf("response ms: mean %.3f  max %.3f\n", m.MeanRespMs, m.MaxRespMs)
	return nil
}
