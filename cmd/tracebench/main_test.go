package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quiet routes the subcommands' stdout chatter to /dev/null for the
// duration of the test.
func quiet(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

// TestPipeline drives every subcommand end to end on a small capture:
// record → inspect → tojson → replay (strict and onto a model, with a
// cache) → fleet, plus the blkparse converter.
func TestPipeline(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	trx := filepath.Join(dir, "t.trx")

	if err := doRecord(trx, 3000, "", 2000, 1); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := doInspect(trx); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := doToJSON(trx); err != nil {
		t.Fatalf("tojson: %v", err)
	}
	if err := doReplay(trx, "", "fcfs", 1, 0, 512, 1, 2000, 1); err != nil {
		t.Fatalf("strict replay: %v", err)
	}
	if err := doReplay(trx, "Quantum-Atlas10KII", "clook", 4, 1, 512, 4, 2000, 1); err != nil {
		t.Fatalf("model replay: %v", err)
	}
	if err := doFleet(trx, "", 4, "fcfs", 2); err != nil {
		t.Fatalf("fleet: %v", err)
	}

	txt := filepath.Join(dir, "blk.txt")
	blk := "8,0 0 1 0.001000000 1 D R 0 + 8 [x]\n" +
		"8,0 0 2 0.004000000 0 C R 0 + 8 [0]\n" +
		"8,0 0 3 0.005000000 1 D W 512 + 16 [x]\n" +
		"8,0 0 4 0.009000000 0 C W 512 + 16 [0]\n"
	if err := os.WriteFile(txt, []byte(blk), 0o644); err != nil {
		t.Fatal(err)
	}
	conv := filepath.Join(dir, "conv.trx")
	if err := doConvert(txt, conv); err != nil {
		t.Fatalf("convert: %v", err)
	}
	if err := doReplay(conv, "", "fcfs", 1, 0, 512, 1, 0, 1); err != nil {
		t.Fatalf("replay of converted trace: %v", err)
	}
}

func TestPipelineErrors(t *testing.T) {
	quiet(t)
	dir := t.TempDir()
	if err := doInspect(filepath.Join(dir, "missing.trx")); err == nil {
		t.Error("inspect of a missing file succeeded")
	}
	bad := filepath.Join(dir, "bad.trx")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := doReplay(bad, "", "fcfs", 1, 0, 512, 1, 0, 1); err == nil {
		t.Error("replay of garbage succeeded")
	}
	if err := doRecord(filepath.Join(dir, "x.trx"), 1, "no-such-disk", 100, 1); err == nil ||
		!strings.Contains(err.Error(), "no-such-disk") {
		t.Errorf("record against unknown model: %v", err)
	}
	if err := doFleet(filepath.Join(dir, "missing.trx"), "", 2, "fcfs", 1); err == nil {
		t.Error("fleet on a missing file succeeded")
	}
}
