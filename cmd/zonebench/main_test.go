package main

import (
	"os"
	"testing"
)

// quiet routes the subcommands' stdout chatter to /dev/null for the
// duration of the test.
func quiet(t *testing.T) {
	t.Helper()
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	t.Cleanup(func() {
		os.Stdout = old
		null.Close()
	})
}

// TestSubcommands drives both modes end to end at small sizes.
func TestSubcommands(t *testing.T) {
	quiet(t)
	if err := doStudy(5, 1); err != nil {
		t.Fatalf("study: %v", err)
	}
	if err := doLFS(4000, 16, 1); err != nil {
		t.Fatalf("lfs: %v", err)
	}
}
