// zonebench runs the flash-era alignment study and ad-hoc zoned/FTL
// experiments: erase-block-aligned vs block-straddling overwrites
// through an FTL over the flash device, behind the zone-aware
// scheduler.
//
// Usage:
//
//	zonebench -study            repro.ZonedStudy: tail latency and write
//	                            amplification vs offered rate, aligned
//	                            vs straddling
//	zonebench -lfs              LFS-over-zones demo: segments 1:1 onto
//	                            zones, cleaner as zone reset
//
// The committed golden snapshot internal/repro/testdata/golden/
// zoned_study.json regenerates exactly with:
//
//	zonebench -study -n 50 -seed 1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"traxtents/internal/device/stack"
	"traxtents/internal/device/zoned"
	"traxtents/internal/lfs"
	"traxtents/internal/repro"
)

func main() {
	study := flag.Bool("study", false, "tail latency vs offered rate, aligned vs straddling (repro.ZonedStudy)")
	lfsDemo := flag.Bool("lfs", false, "LFS over a zoned device: segments 1:1 onto zones")
	n := flag.Int("n", 50, "study size (requests per cell = 40*n)")
	seed := flag.Int64("seed", 1, "study seed")
	writes := flag.Int("writes", 20000, "LFS demo: logical block writes")
	zones := flag.Int("zones", 16, "LFS demo: zone count")
	flag.Parse()

	switch {
	case *study:
		if err := doStudy(*n, *seed); err != nil {
			fail(err)
		}
	case *lfsDemo:
		if err := doLFS(*writes, *zones, *seed); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doStudy(n int, seed int64) error {
	pts, err := repro.ZonedStudy(n, seed)
	if err != nil {
		return err
	}
	fmt.Printf("== ZonedStudy: FTL tail latency vs offered write rate (n=%d, block-sized overwrites) ==\n", n)
	fmt.Printf("%8s %12s %10s %10s %10s %8s %12s %10s %10s %10s %8s\n",
		"rate/s", "al iops", "al mean", "al p99", "al p99.99", "al amp",
		"str iops", "str mean", "str p99", "str p99.99", "str amp")
	for _, p := range pts {
		fmt.Printf("%8g %12.1f %10.2f %10.2f %10.2f %8.2f %12.1f %10.2f %10.2f %10.2f %8.2f\n",
			p.X,
			p.Values["aligned iops"], p.Values["aligned mean"], p.Values["aligned p99"],
			p.Values["aligned p99.99"], p.Values["aligned amp"],
			p.Values["straddling iops"], p.Values["straddling mean"], p.Values["straddling p99"],
			p.Values["straddling p99.99"], p.Values["straddling amp"])
	}
	fmt.Println("\nerase-block-aligned overwrites leave fully-dead GC victims (bare erase, amp 1.0);")
	fmt.Println("straddling overwrites leave half-live victims whose copy bursts inflate the tail.")
	return nil
}

func doLFS(writes, zones int, seed int64) error {
	f, err := zoned.NewFlash(64 * 1024)
	if err != nil {
		return err
	}
	z, err := zoned.New(f, zoned.WithZones(zones))
	if err != nil {
		return err
	}
	segs, err := lfs.ZoneSegments(z)
	if err != nil {
		return err
	}
	l, err := lfs.NewLFSStack(z, stack.Config{}, segs, 8)
	if err != nil {
		return err
	}
	working := segs[0].Len / 8 * int64(zones) / 2
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < writes; i++ {
		if err := l.Write(rng.Int63n(working)); err != nil {
			return fmt.Errorf("write %d: %w", i, err)
		}
	}
	fmt.Printf("== LFS over %d zones (%d-sector segments), %d block writes ==\n", zones, segs[0].Len, writes)
	fmt.Printf("new written    %8d blocks\n", l.NewWritten)
	fmt.Printf("cleaner read   %8d blocks\n", l.CleanRead)
	fmt.Printf("cleaner wrote  %8d blocks\n", l.CleanWritten)
	fmt.Printf("zone resets    %8d\n", l.CleanResets)
	fmt.Printf("write cost     %8.3f\n", l.MeasuredWriteCost())
	fmt.Printf("virtual time   %8.1f ms\n", l.Now())
	fmt.Println("\nevery log flush is a sequential zone fill at the write pointer;")
	fmt.Println("every segment reclaim is one zone reset — no violation is ever issued.")
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "zonebench:", err)
	os.Exit(1)
}
