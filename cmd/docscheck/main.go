// docscheck is the documentation gate CI runs on every PR. It enforces
// two invariants the docs overhaul introduced:
//
//  1. Every package in the module carries package-level godoc — walked
//     via `go list`'s Doc field, so a package whose doc.go loses its
//     comment (or a new package added without one) fails the build.
//
//  2. Every relative link in the repository's Markdown files resolves
//     to an existing file — READMEs, DESIGN.md, and the examples
//     walkthroughs reference each other and the source tree, and a
//     rename that breaks a link fails here instead of on a reader.
//
// External (http/https/mailto) links are not fetched: CI must not
// depend on the network. Usage:
//
//	go run ./cmd/docscheck [dir]
//
// with dir defaulting to the current directory (the module root).
package main

import (
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	failures := 0
	failures += checkPackageDocs(root)
	failures += checkMarkdownLinks(root)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("docscheck: all package docs present, all markdown links resolve")
}

// checkPackageDocs walks every package in the module and reports the
// ones with no package-level documentation.
func checkPackageDocs(root string) int {
	cmd := exec.Command("go", "list", "-f", "{{.ImportPath}}\t{{.Doc}}", "./...")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: go list: %v\n", err)
		return 1
	}
	bad := 0
	for _, line := range strings.Split(string(out), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		// A package whose Doc is empty prints "path\t" — the separator
		// must survive, so trim only the newline, never the tab.
		path, doc, ok := strings.Cut(strings.TrimRight(line, "\r"), "\t")
		if !ok || strings.TrimSpace(doc) == "" {
			fmt.Fprintf(os.Stderr, "docscheck: package %s has no package-level godoc\n", path)
			bad++
		}
	}
	return bad
}

// mdLink matches inline Markdown links/images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdownLinks resolves every relative link in every tracked
// Markdown file against the file tree.
func checkMarkdownLinks(root string) int {
	bad := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		// PAPER.md, PAPERS.md, and SNIPPETS.md are machine-retrieved
		// research notes (paper abstracts, related-work dumps, exemplar
		// snippets); their links point at artifacts of the retrieval
		// pipeline, not at this repository.
		switch d.Name() {
		case "PAPER.md", "PAPERS.md", "SNIPPETS.md":
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), // external
				strings.HasPrefix(target, "mailto:"),
				strings.HasPrefix(target, "#"): // intra-document anchor
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q (%s)\n", path, m[1], resolved)
				bad++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: walk: %v\n", err)
		bad++
	}
	return bad
}
