package main

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestRepoIsClean: the gate this tool exists to enforce must hold on
// the repository itself — every package documented, every relative
// Markdown link resolving.
func TestRepoIsClean(t *testing.T) {
	root := repoRoot(t)
	if n := checkPackageDocs(root); n != 0 {
		t.Fatalf("%d package(s) without package-level godoc", n)
	}
	if n := checkMarkdownLinks(root); n != 0 {
		t.Fatalf("%d broken markdown link(s)", n)
	}
}

// TestMarkdownLinkChecker: broken relative links are caught; external
// links, anchors, and images of existing files are not.
func TestMarkdownLinkChecker(t *testing.T) {
	dir := t.TempDir()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(os.WriteFile(filepath.Join(dir, "exists.md"), []byte("# here"), 0o644))
	must(os.Mkdir(filepath.Join(dir, "sub"), 0o755))
	must(os.WriteFile(filepath.Join(dir, "sub", "deep.md"),
		[]byte("[up](../exists.md) and [broken](nope.md)"), 0o644))
	must(os.WriteFile(filepath.Join(dir, "doc.md"), []byte(`
[ok](exists.md) [anchor](exists.md#sec) [self](#local)
[ext](https://example.com/x.md) [mail](mailto:a@b.c)
![img](exists.md) [into](sub/deep.md)
[gone](missing.md)
`), 0o644))
	if n := checkMarkdownLinks(dir); n != 2 {
		t.Fatalf("want exactly the 2 broken links flagged, got %d", n)
	}
	// testdata and dotted directories are out of scope.
	must(os.Mkdir(filepath.Join(dir, "testdata"), 0o755))
	must(os.WriteFile(filepath.Join(dir, "testdata", "t.md"), []byte("[x](gone.md)"), 0o644))
	must(os.Mkdir(filepath.Join(dir, ".hidden"), 0o755))
	must(os.WriteFile(filepath.Join(dir, ".hidden", "h.md"), []byte("[x](gone.md)"), 0o644))
	// PAPERS.md-style retrieval notes are excluded by name.
	must(os.WriteFile(filepath.Join(dir, "PAPERS.md"), []byte("![p](page0.jpeg)"), 0o644))
	if n := checkMarkdownLinks(dir); n != 2 {
		t.Fatalf("skipped directories/files leaked into the count: got %d", n)
	}
}

// TestPackageDocChecker: a module with an undocumented package fails.
func TestPackageDocChecker(t *testing.T) {
	dir := t.TempDir()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpcheck\n\ngo 1.24\n"), 0o644))
	must(os.WriteFile(filepath.Join(dir, "main.go"), []byte("package main\n\nfunc main() {}\n"), 0o644))
	if n := checkPackageDocs(dir); n != 1 {
		t.Fatalf("undocumented package not flagged: got %d", n)
	}
	must(os.WriteFile(filepath.Join(dir, "main.go"),
		[]byte("// Command tmpcheck does nothing.\npackage main\n\nfunc main() {}\n"), 0o644))
	if n := checkPackageDocs(dir); n != 0 {
		t.Fatalf("documented package flagged: got %d", n)
	}
}
