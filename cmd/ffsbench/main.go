// ffsbench regenerates Table 2: the FFS application benchmarks for the
// unmodified, fast-start, and traxtent-aware file systems on a simulated
// Quantum Atlas 10K.
//
// Usage:
//
//	ffsbench            quick (scaled-down) sizes
//	ffsbench -full      the paper's sizes (4 GB scan, 512 MB diff, ...)
//	ffsbench -mkfs      excluded-block fractions only
//	ffsbench -study     repro.FFSStudy: small-I/O response vs host-cache
//	                    size over the composed host stack
//
// The committed golden snapshot internal/repro/testdata/golden/
// ffs_study.json regenerates exactly with:
//
//	ffsbench -study -n 50 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"traxtents"
	"traxtents/internal/ffs"
	"traxtents/internal/repro"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full sizes")
	mkfs := flag.Bool("mkfs", false, "report excluded-block fractions only")
	study := flag.Bool("study", false, "small-I/O response vs host-cache size (repro.FFSStudy)")
	n := flag.Int("n", 400, "random block reads per study cell")
	seed := flag.Int64("seed", 1, "study seed")
	flag.Parse()

	if *study {
		pts, err := repro.FFSStudy(*n, *seed, nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("== FFSStudy: mean small-I/O response vs host-cache size (n=%d random 8 KB reads) ==\n", *n)
		fmt.Printf("%8s %15s %15s %15s %15s\n", "cache MB", "unmodified ms", "traxtent ms", "unmodified hit", "traxtent hit")
		for _, p := range pts {
			fmt.Printf("%8g %15.2f %15.2f %14.1f%% %14.1f%%\n",
				p.X, p.Values["unmodified mean"], p.Values["traxtent mean"],
				p.Values["unmodified hit"]*100, p.Values["traxtent hit"]*100)
		}
		fmt.Println("\nthe traxtent allocator never straddles a track, so its misses fill one line;")
		fmt.Println("unmodified straddles pay rotation plus double fills until the cache holds everything.")
		return
	}

	if *mkfs {
		for _, name := range []string{"Quantum-Atlas10K", "Quantum-Atlas10KII"} {
			m, err := traxtents.DiskModel(name)
			if err != nil {
				fail(err)
			}
			d, err := traxtents.NewDisk(m)
			if err != nil {
				fail(err)
			}
			table, err := traxtents.GroundTruthTable(d)
			if err != nil {
				fail(err)
			}
			fs, err := traxtents.NewFFS(d, traxtents.FFSParams{Variant: traxtents.FFSTraxtent, Table: table})
			if err != nil {
				fail(err)
			}
			fr := fs.ExcludedFraction()
			fmt.Printf("%-22s excluded blocks: 1 in %.1f (%.2f%%)\n", name, 1/fr, fr*100)
		}
		return
	}

	sizes := repro.QuickTable2Sizes()
	label := "quick sizes"
	if *full {
		sizes = repro.FullTable2Sizes()
		label = "paper sizes"
	}
	fmt.Printf("== Table 2: FreeBSD FFS results (%s, Quantum Atlas 10K) ==\n", label)
	var rows []repro.Table2Row
	for _, v := range []ffs.Variant{ffs.Unmodified, ffs.FastStart, ffs.Traxtent} {
		row, err := repro.RunTable2(v, sizes)
		if err != nil {
			fail(err)
		}
		rows = append(rows, row)
	}
	for _, line := range repro.FormatTable2(rows) {
		fmt.Println(line)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ffsbench:", err)
	os.Exit(1)
}
