// ffsbench regenerates Table 2: the FFS application benchmarks for the
// unmodified, fast-start, and traxtent-aware file systems on a simulated
// Quantum Atlas 10K.
//
// Usage:
//
//	ffsbench            quick (scaled-down) sizes
//	ffsbench -full      the paper's sizes (4 GB scan, 512 MB diff, ...)
//	ffsbench -mkfs      excluded-block fractions only
package main

import (
	"flag"
	"fmt"
	"os"

	"traxtents"
	"traxtents/internal/ffs"
	"traxtents/internal/repro"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full sizes")
	mkfs := flag.Bool("mkfs", false, "report excluded-block fractions only")
	flag.Parse()

	if *mkfs {
		for _, name := range []string{"Quantum-Atlas10K", "Quantum-Atlas10KII"} {
			m, err := traxtents.DiskModel(name)
			if err != nil {
				fail(err)
			}
			d, err := traxtents.NewDisk(m)
			if err != nil {
				fail(err)
			}
			table, err := traxtents.GroundTruthTable(d)
			if err != nil {
				fail(err)
			}
			fs, err := traxtents.NewFFS(d, traxtents.FFSParams{Variant: traxtents.FFSTraxtent, Table: table})
			if err != nil {
				fail(err)
			}
			fr := fs.ExcludedFraction()
			fmt.Printf("%-22s excluded blocks: 1 in %.1f (%.2f%%)\n", name, 1/fr, fr*100)
		}
		return
	}

	sizes := repro.QuickTable2Sizes()
	label := "quick sizes"
	if *full {
		sizes = repro.FullTable2Sizes()
		label = "paper sizes"
	}
	fmt.Printf("== Table 2: FreeBSD FFS results (%s, Quantum Atlas 10K) ==\n", label)
	var rows []repro.Table2Row
	for _, v := range []ffs.Variant{ffs.Unmodified, ffs.FastStart, ffs.Traxtent} {
		row, err := repro.RunTable2(v, sizes)
		if err != nil {
			fail(err)
		}
		rows = append(rows, row)
	}
	for _, line := range repro.FormatTable2(rows) {
		fmt.Println(line)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ffsbench:", err)
	os.Exit(1)
}
