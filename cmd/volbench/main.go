// volbench exercises the multi-tenant volume server: N tenant volumes
// placed across simulated spindle shards (whole traxtents when aligned,
// a size-matched fixed grid when not), driven by an open Poisson load
// through per-tenant admission control and the tenant-aware scheduling
// tier, with streaming P² tail-latency accounting per tenant.
//
// Usage:
//
//	volbench                 one measurement, aligned vs unaligned
//	volbench -study          the repro.TenantStudy sweep (golden snapshot)
//
// The measurement composition:
//
//	-tenants N     tenant volume count (default 16)
//	-shards N      spindle shards under the manager (default 2)
//	-limit R       per-tenant admission limit in IOPS (0 = unlimited)
//	-sched NAME    tenant tier: fcfs|fair|edf (or sstf|clook|traxtent)
//	-qdepth N      tier queue depth per shard (default 16)
//	-cachemb MB    host-cache budget per shard (0 = none)
//	-rate R        aggregate offered load in requests/second
//	-n N           load scale: 64·n requests (also study cells per point)
//	-seed S        workload seed
//
// The committed golden snapshot internal/repro/testdata/golden/
// tenant_study.json regenerates exactly with:
//
//	volbench -study -n 50 -seed 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"traxtents"
	"traxtents/internal/repro"
)

func main() {
	study := flag.Bool("study", false, "repro.TenantStudy sweep: tail latency vs tenant count")
	tenants := flag.Int("tenants", 16, "tenant volume count")
	shards := flag.Int("shards", 2, "spindle shards under the manager")
	limit := flag.Float64("limit", 0, "per-tenant admission limit in IOPS (0 = unlimited)")
	schedName := flag.String("sched", "fair", "tenant tier: fcfs|fair|edf (or sstf|clook|traxtent)")
	qdepth := flag.Int("qdepth", 16, "tier queue depth per shard")
	cachemb := flag.Float64("cachemb", 0, "host-cache budget per shard in MB")
	rate := flag.Float64("rate", 120, "aggregate offered load in requests/second")
	n := flag.Int("n", 50, "load scale: 64*n requests; study cells per point")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if *study {
		runStudy(*n, *seed)
		return
	}
	if *tenants < 1 || *shards < 1 || *n < 1 {
		fail(fmt.Errorf("need -tenants, -shards, -n >= 1"))
	}
	fmt.Printf("volume manager: %d tenants on %d shards, tier %s depth %d", *tenants, *shards, *schedName, *qdepth)
	if *cachemb > 0 {
		fmt.Printf(", %g MB cache/shard", *cachemb)
	}
	if *limit > 0 {
		fmt.Printf(", %g IOPS/tenant", *limit)
	}
	fmt.Printf("; %d requests at %g req/s\n\n", 64**n, *rate)
	fmt.Printf("%10s %8s %8s %10s %10s %10s %12s %8s\n",
		"layout", "served", "rejected", "mean ms", "p99 ms", "p99.99 ms", "max ms", "req/s")
	for _, aligned := range []bool{true, false} {
		agg, iops, err := measure(*tenants, *shards, *limit, *schedName, *qdepth, *cachemb, *rate, *n, *seed, aligned)
		if err != nil {
			fail(err)
		}
		name := "aligned"
		if !aligned {
			name = "unaligned"
		}
		fmt.Printf("%10s %8d %8d %10.2f %10.2f %10.2f %12.2f %8.1f\n",
			name, agg.Requests, agg.Rejected, agg.MeanMs, agg.P99Ms, agg.P9999Ms, agg.MaxMs, iops)
	}
	fmt.Println("\nthe unaligned grid straddles track boundaries, so every whole-extent read")
	fmt.Println("pays an extra head switch and lost rotation; the aligned layout keeps the")
	fmt.Println("zero-latency whole-track access and the shorter tail.")
}

// measure runs one (layout, composition) cell and returns the
// cross-tenant aggregate and the achieved request rate.
func measure(tenants, shards int, limit float64, schedName string, qdepth int, cachemb, rate float64, n int, seed int64, aligned bool) (traxtents.VolumeStats, float64, error) {
	m := traxtents.MustDiskModel("Quantum-Atlas10KII")
	devs := make([]traxtents.Device, shards)
	for i := range devs {
		d, err := traxtents.NewDisk(m, traxtents.WithSeed(seed+int64(10+i)))
		if err != nil {
			return traxtents.VolumeStats{}, 0, err
		}
		devs[i] = d
		if cachemb > 0 {
			c, err := traxtents.NewCachedDevice(d, traxtents.WithCacheMB(cachemb))
			if err != nil {
				return traxtents.VolumeStats{}, 0, err
			}
			devs[i] = c
		}
	}
	table, err := traxtents.GroundTruthTable(devs[0])
	if err != nil {
		return traxtents.VolumeStats{}, 0, err
	}
	meanExtent := devs[0].Capacity() / int64(table.NumTracks())
	opts := []traxtents.VolumeManagerOption{
		traxtents.WithVolumeTier(schedName),
		traxtents.WithVolumeTierDepth(qdepth),
	}
	if !aligned {
		opts = append(opts, traxtents.WithVolumeExtentSectors(meanExtent))
	}
	mgr, err := traxtents.NewVolumeManager(devs, opts...)
	if err != nil {
		return traxtents.VolumeStats{}, 0, err
	}
	var vopts []traxtents.TenantOption
	if limit > 0 {
		vopts = append(vopts, traxtents.WithTenantLimit(traxtents.TenantLimit{IOPS: limit}))
	}
	names := make([]string, tenants)
	bounds := make([][]int64, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%04d", i)
		v, err := mgr.AddVolume(names[i], meanExtent*4, vopts...)
		if err != nil {
			return traxtents.VolumeStats{}, 0, err
		}
		cum := []int64{0}
		for _, e := range v.ExtentTable() {
			cum = append(cum, cum[len(cum)-1]+e.Sectors)
		}
		bounds[i] = cum
	}

	rng := rand.New(rand.NewSource(seed))
	at, meanIA := 0.0, 1000.0/rate
	for i := 0; i < 64*n; i++ {
		ti := rng.Intn(tenants)
		b := bounds[ti]
		k := rng.Intn(len(b) - 1)
		req := traxtents.Request{LBN: b[k], Sectors: int(b[k+1] - b[k])}
		err := mgr.Submit(names[ti], at, req)
		if err != nil && !errors.Is(err, traxtents.ErrTenantRejected) {
			return traxtents.VolumeStats{}, 0, err
		}
		at += rng.ExpFloat64() * meanIA
	}
	if err := mgr.Drain(); err != nil {
		return traxtents.VolumeStats{}, 0, err
	}
	agg := mgr.Aggregate()
	iops := 0.0
	if now := mgr.Now(); now > 0 {
		iops = float64(agg.Requests) / now * 1000
	}
	return agg, iops, nil
}

// runStudy regenerates the repro.TenantStudy sweep — the same cells the
// golden snapshot pins.
func runStudy(n int, seed int64) {
	pts, err := repro.TenantStudy(n, seed, nil)
	if err != nil {
		fail(err)
	}
	fmt.Println("== TenantStudy: cross-tenant response tail vs tenant count, aligned vs unaligned ==")
	fmt.Printf("%8s %12s %12s %14s %14s %12s %14s\n",
		"tenants", "al mean ms", "un mean ms", "al p99.99 ms", "un p99.99 ms", "al req/s", "un req/s")
	for _, p := range pts {
		fmt.Printf("%8.0f %12.2f %12.2f %14.2f %14.2f %12.1f %14.1f\n",
			p.X,
			p.Values["aligned mean"], p.Values["unaligned mean"],
			p.Values["aligned p99.99"], p.Values["unaligned p99.99"],
			p.Values["aligned iops"], p.Values["unaligned iops"])
	}
	fmt.Println("\nboth layouts see the same open Poisson load; the unaligned grid's per-access")
	fmt.Println("penalty drains bursts slower, so its tail inflates with tenant contention while")
	fmt.Println("the aligned layout stays flat.")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "volbench:", err)
	os.Exit(1)
}
