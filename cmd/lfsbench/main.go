// lfsbench regenerates Figure 10: LFS overall write cost versus segment
// size for track-aligned and unaligned access, alongside the analytic
// transfer-inefficiency model line of Matthews et al.
//
// Usage:
//
//	lfsbench
//	lfsbench -samples 300
package main

import (
	"flag"
	"fmt"
	"os"

	"traxtents"
	"traxtents/internal/lfs"
)

func main() {
	samples := flag.Int("samples", 200, "segment writes measured per point")
	flag.Parse()

	m, err := traxtents.DiskModel("Quantum-Atlas10KII")
	if err != nil {
		fail(err)
	}
	sizes := []float64{32, 64, 128, 264, 528, 1056, 2112, 4096}

	al, err := lfs.OWCCurve(m, sizes, true, *samples, 3)
	if err != nil {
		fail(err)
	}
	un, err := lfs.OWCCurve(m, sizes, false, *samples, 3)
	if err != nil {
		fail(err)
	}

	fmt.Println("== Figure 10: LFS overall write cost vs segment size (Atlas 10K II, Auspex write costs) ==")
	fmt.Printf("%10s %12s %12s %12s\n", "seg KB", "aligned", "unaligned", "model")
	for i := range sizes {
		mod := lfs.WriteCost(sizes[i]) * lfs.ModelTI(5.2, 40, sizes[i])
		fmt.Printf("%10.0f %12.2f %12.2f %12.2f\n", sizes[i], al[i].OWC, un[i].OWC, mod)
	}

	alMin, alKB := minOWC(al)
	unMin, unKB := minOWC(un)
	fmt.Printf("\nminima: aligned %.2f @ %.0f KB, unaligned %.2f @ %.0f KB (aligned %.0f%% lower; paper: 44%%)\n",
		alMin, alKB, unMin, unKB, (1-alMin/unMin)*100)
}

func minOWC(pts []lfs.OWCPoint) (float64, float64) {
	best, kb := pts[0].OWC, pts[0].SegKB
	for _, p := range pts[1:] {
		if p.OWC < best {
			best, kb = p.OWC, p.SegKB
		}
	}
	return best, kb
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lfsbench:", err)
	os.Exit(1)
}
