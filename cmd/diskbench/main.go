// diskbench regenerates the paper's disk-level figures: efficiency vs
// I/O size (Figure 1), expected rotational latency (Figure 3), the disk
// characteristics table (Table 1), head times (Figure 6 and the §5.2
// write/cross-disk results), the response-time breakdown (Figure 7),
// and response-time variance (Figure 8) — plus the queued-device
// studies that push track alignment beyond the paper's one-request-at-
// a-time methodology: response time vs queue depth, and response time/
// throughput vs offered load, aligned vs unaligned.
//
// Usage:
//
//	diskbench -fig 1|3|6|7|8        one figure
//	diskbench -table 1              Table 1
//	diskbench -writes               §5.2 write head times
//	diskbench -disks                §5.2 cross-disk comparison
//	diskbench -queue                response time vs queue depth
//	diskbench -load                 response/throughput vs offered load
//	diskbench -cache                hit rate & response vs host-cache size
//	diskbench -rebuild              degraded-mode rebuild, track vs block granularity
//	diskbench -all                  everything
//	diskbench -n 5000               requests per measurement
//
// The queued-device studies take:
//
//	-sched fcfs|sstf|clook|traxtent  scheduler (default clook)
//	-qdepth N                        queue depth for -load (default 8)
//	-arrival open|closed             arrival process for -load
//
// The cache study takes:
//
//	-cachemb N     largest cache size in MB (0: the default sweep)
//	-readahead     whole-track readahead (default true)
//	-writeback     write-back with a 1-in-4 write mix (default
//	               write-through, reads only)
//
// The rebuild study takes:
//
//	-rblocks 16,64   block-granular read sizes in sectors to compare
//	                 against the track-aligned strategy
//
// and scales with -n (foreground requests and stripe units per study
// n); the committed golden snapshot is -rebuild -n 50 -seed 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"traxtents/internal/repro"
	"traxtents/internal/workload/driver"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (1, 3, 6, 7, 8)")
	table := flag.Int("table", 0, "table number to regenerate (1)")
	writes := flag.Bool("writes", false, "§5.2 write head times")
	disks := flag.Bool("disks", false, "§5.2 cross-disk read comparison")
	queue := flag.Bool("queue", false, "response time vs queue depth, aligned vs unaligned")
	load := flag.Bool("load", false, "response/throughput vs offered load, aligned vs unaligned")
	cacheStudy := flag.Bool("cache", false, "hit rate & response vs host-cache size, aligned vs unaligned")
	rebuild := flag.Bool("rebuild", false, "degraded-mode rebuild study, track-aligned vs block-granular")
	rblocks := flag.String("rblocks", "", "comma-separated block sizes in sectors for -rebuild (default 16,64)")
	cacheMB := flag.Float64("cachemb", 0, "largest host-cache size in MB for -cache (0: default sweep)")
	readahead := flag.Bool("readahead", true, "whole-track readahead in the host cache for -cache")
	writeback := flag.Bool("writeback", false, "write-back host cache with a 1-in-4 write mix for -cache")
	schedName := flag.String("sched", "clook", "scheduler for -queue/-load: fcfs|sstf|clook|traxtent")
	qdepth := flag.Int("qdepth", 8, "queue depth for -load")
	arrival := flag.String("arrival", "open", "arrival process for -load: open (Poisson) | closed (think time)")
	all := flag.Bool("all", false, "regenerate everything")
	n := flag.Int("n", 5000, "requests per measurement (the paper uses 5000)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	any := false
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "diskbench:", err)
		os.Exit(1)
	}
	if *all || *table == 1 {
		any = true
		fmt.Println("== Table 1: representative disk characteristics ==")
		for _, row := range repro.Table1() {
			fmt.Println(row)
		}
		fmt.Println()
	}
	if *all || *fig == 1 {
		any = true
		fmt.Println("== Figure 1: disk efficiency vs I/O size (Atlas 10K II, first zone, tworeq) ==")
		pts, err := repro.Fig1Efficiency(*n, *seed)
		if err != nil {
			die(err)
		}
		fmt.Printf("%10s %10s %10s %10s\n", "I/O KB", "aligned", "unaligned", "max-stream")
		for _, p := range pts {
			fmt.Printf("%10.0f %10.3f %10.3f %10.3f\n",
				p.X, p.Values["aligned"], p.Values["unaligned"], p.Values["maxstream"])
		}
		fmt.Println()
	}
	if *all || *fig == 3 {
		any = true
		fmt.Println("== Figure 3: expected rotational latency vs request size (10K RPM) ==")
		fmt.Printf("%12s %14s %10s\n", "% of track", "zero-latency", "ordinary")
		for _, p := range repro.Fig3RotationalLatency() {
			fmt.Printf("%11.0f%% %12.2fms %8.2fms\n", p.X, p.Values["zero-latency"], p.Values["ordinary"])
		}
		fmt.Println()
	}
	if *all || *fig == 6 {
		any = true
		fmt.Println("== Figure 6: average head time vs I/O size (Atlas 10K II) ==")
		series, err := repro.Fig6HeadTime(*n, *seed)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-18s", "I/O (frac track)")
		for _, f := range series[0].Fracs {
			fmt.Printf("%8.1f", f)
		}
		fmt.Println()
		for _, s := range series {
			fmt.Printf("%-18s", s.Label)
			for _, t := range s.Times {
				fmt.Printf("%7.2fm", t)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if *all || *fig == 7 {
		any = true
		fmt.Println("== Figure 7: response time breakdown, track-sized onereq reads ==")
		bk, err := repro.Fig7Breakdown(*n, *seed)
		if err != nil {
			die(err)
		}
		var labels []string
		for k := range bk {
			labels = append(labels, k)
		}
		sort.Strings(labels)
		for _, label := range labels {
			c := bk[label]
			fmt.Printf("%-28s response %6.2f = seek %5.2f + rot/switch %5.2f + media %5.2f + bus tail %5.2f\n",
				label, c["response"], c["seek"], c["rotational+switch"], c["media transfer"], c["bus tail"])
		}
		fmt.Println()
	}
	if *all || *fig == 8 {
		any = true
		fmt.Println("== Figure 8: response time ± std dev (infinitely fast bus, onereq) ==")
		pts, err := repro.Fig8Variance(*n, *seed)
		if err != nil {
			die(err)
		}
		fmt.Printf("%12s %14s %12s %14s %12s\n", "% of track", "aligned mean", "aligned sd", "unalign mean", "unalign sd")
		for _, p := range pts {
			fmt.Printf("%11.0f%% %12.2fms %10.2fms %12.2fms %10.2fms\n", p.X,
				p.Values["aligned mean"], p.Values["aligned sd"],
				p.Values["unaligned mean"], p.Values["unaligned sd"])
		}
		fmt.Println()
	}
	if *all || *writes {
		any = true
		fmt.Println("== §5.2: track-sized write head times (paper: onereq 13.9→10.0, tworeq 13.8→10.2) ==")
		wr, err := repro.WriteHeadTimes(*n, *seed)
		if err != nil {
			die(err)
		}
		for _, k := range []string{"onereq unaligned", "onereq aligned", "tworeq unaligned", "tworeq aligned"} {
			fmt.Printf("%-18s %6.2f ms\n", k, wr[k])
		}
		fmt.Println()
	}
	if *all || *disks {
		any = true
		fmt.Println("== §5.2: aligned read head-time reduction per disk (onereq/tworeq) ==")
		red, err := repro.OtherDisksReadReduction(*n, *seed)
		if err != nil {
			die(err)
		}
		var names []string
		for k := range red {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-22s %5.1f%% / %5.1f%%\n", name, red[name][0]*100, red[name][1]*100)
		}
		fmt.Println()
	}
	if *all || *queue {
		any = true
		fmt.Printf("== Queued device: response time vs queue depth (%s, closed loop, think 0) ==\n", *schedName)
		pts, err := repro.QueueDepthStudy(*n, *seed, *schedName)
		if err != nil {
			die(err)
		}
		fmt.Printf("%8s %14s %14s %14s %14s\n", "depth", "aligned ms", "unaligned ms", "aligned IOPS", "unalign IOPS")
		for _, p := range pts {
			fmt.Printf("%8.0f %12.2fms %12.2fms %14.1f %14.1f\n", p.X,
				p.Values["aligned mean"], p.Values["unaligned mean"],
				p.Values["aligned iops"], p.Values["unaligned iops"])
		}
		fmt.Println()
	}
	if *all || *load {
		any = true
		arr := driver.Open
		xLabel := "req/s"
		switch *arrival {
		case "open":
		case "closed":
			arr, xLabel = driver.Closed, "clients"
		default:
			die(fmt.Errorf("unknown arrival process %q (open|closed)", *arrival))
		}
		fmt.Printf("== Queued device: response/throughput vs offered load (%s, depth %d, %s arrivals) ==\n",
			*schedName, *qdepth, arr)
		pts, err := repro.LoadCurve(*n, *seed, *schedName, *qdepth, arr)
		if err != nil {
			die(err)
		}
		fmt.Printf("%8s %14s %14s %14s %14s\n", xLabel, "aligned ms", "unaligned ms", "aligned IOPS", "unalign IOPS")
		for _, p := range pts {
			fmt.Printf("%8.0f %12.2fms %12.2fms %14.1f %14.1f\n", p.X,
				p.Values["aligned mean"], p.Values["unaligned mean"],
				p.Values["aligned iops"], p.Values["unaligned iops"])
		}
		fmt.Println()
	}
	if *all || *cacheStudy {
		any = true
		var sizes []float64
		if *cacheMB > 0 {
			sizes = []float64{0, *cacheMB / 4, *cacheMB / 2, *cacheMB}
		}
		mode := "write-through, reads"
		if *writeback {
			mode = "write-back, 1-in-4 writes"
		}
		fmt.Printf("== Host cache: hit rate & response vs cache size (readahead=%v, %s, C-LOOK depth 4) ==\n",
			*readahead, mode)
		pts, err := repro.CacheStudy(*n, *seed, sizes, *readahead, *writeback)
		if err != nil {
			die(err)
		}
		fmt.Printf("%8s %12s %12s %14s %14s %14s %14s\n",
			"MB", "aligned hit", "unalign hit", "aligned ms", "unaligned ms", "aligned IOPS", "unalign IOPS")
		for _, p := range pts {
			fmt.Printf("%8.1f %11.1f%% %11.1f%% %12.2fms %12.2fms %14.1f %14.1f\n", p.X,
				p.Values["aligned hit"]*100, p.Values["unaligned hit"]*100,
				p.Values["aligned mean"], p.Values["unaligned mean"],
				p.Values["aligned iops"], p.Values["unaligned iops"])
		}
		fmt.Println()
	}
	if *all || *rebuild {
		any = true
		var blocks []int
		if *rblocks != "" {
			for _, f := range strings.Split(*rblocks, ",") {
				b, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					die(fmt.Errorf("bad -rblocks entry %q: %v", f, err))
				}
				blocks = append(blocks, b)
			}
		}
		fmt.Println("== Degraded-mode rebuild: track-aligned vs block-granular (3-wide parity, 1 lost, C-LOOK depth 8) ==")
		res, err := repro.RebuildStudy(*n, *seed, blocks)
		if err != nil {
			die(err)
		}
		fmt.Printf("%-10s %8s %8s %12s %8s %10s %10s %12s %8s\n",
			"strategy", "units", "reads", "rebuild ms", "MB/s", "fg mean", "fg p99", "fg p99.99", "reconst")
		for _, r := range res {
			m := r.Metrics
			fmt.Printf("%-10s %8d %8d %12.1f %8.2f %8.2fms %8.2fms %10.2fms %8d\n",
				r.Strategy, m.Units, m.Requests, m.RebuildMs, m.RebuildMBPerSec,
				m.ForegroundMeanMs, m.ForegroundP99Ms, m.ForegroundP9999Ms, m.Reconstructs)
		}
		fmt.Println()
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
