// Quickstart: create a simulated disk, extract its track boundaries,
// and measure the benefit of track-aligned access — the paper's Figure 1
// point A in a dozen lines of API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"traxtents"
)

func main() {
	// A simulated Quantum Atlas 10K II with its default SCSI setup.
	m, err := traxtents.DiskModel("Quantum-Atlas10KII")
	if err != nil {
		log.Fatal(err)
	}
	d, err := traxtents.NewDisk(m)
	if err != nil {
		log.Fatal(err)
	}

	// Characterize it through the (simulated) SCSI interface.
	res, err := traxtents.Characterize(traxtents.NewSCSITarget(d))
	if err != nil {
		log.Fatal(err)
	}
	table := res.Table
	fmt.Printf("extracted %d track boundaries in %d translations\n",
		table.NumTracks(), res.Translations)

	// The traxtent holding LBN one million, and request clipping.
	ext, err := table.Find(1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LBN 1000000 lives in traxtent %v (%d KB)\n", ext, ext.Len*512/1024)
	clipped, _ := table.Clip(1_000_000, 4096)
	fmt.Printf("a 2 MB request at LBN 1000000 clips to %d sectors at the boundary\n", clipped)

	// Measure: 2000 random track-sized reads, aligned vs unaligned.
	rng := rand.New(rand.NewSource(1))
	run := func(aligned bool) float64 {
		disk, err := traxtents.NewDisk(m)
		if err != nil {
			log.Fatal(err)
		}
		var reqs []traxtents.Request
		for len(reqs) < 2000 {
			e := table.Index(rng.Intn(table.NumTracks() / 8)) // first zone
			lbn := e.Start
			if !aligned {
				lbn += rng.Int63n(e.Len)
				if lbn+e.Len > table.Boundaries()[len(table.Boundaries())-1] {
					continue
				}
			}
			reqs = append(reqs, traxtents.Request{LBN: lbn, Sectors: int(e.Len)})
		}
		rs, err := disk.TwoReq(reqs)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for i := 1; i < len(rs); i++ {
			sum += rs[i].Done - rs[i-1].Done
		}
		return sum / float64(len(rs)-1)
	}
	al, un := run(true), run(false)
	fmt.Printf("track-sized reads: aligned %.2f ms vs unaligned %.2f ms head time (%.0f%% better)\n",
		al, un, (un/al-1)*100)
}
