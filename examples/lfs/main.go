// LFS example: a log-structured store whose segments are variable-sized
// traxtents (§5.5.1), exercised with random overwrites until the cleaner
// runs, reporting the measured write cost.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"traxtents"
)

func main() {
	m, err := traxtents.DiskModel("Quantum-Atlas10KII")
	if err != nil {
		log.Fatal(err)
	}
	d, err := traxtents.NewDisk(m)
	if err != nil {
		log.Fatal(err)
	}
	table, err := traxtents.GroundTruthTable(d)
	if err != nil {
		log.Fatal(err)
	}

	// Segments = the first 64 tracks, whatever their individual sizes.
	var segs []traxtents.Extent
	for i := 0; i < 64; i++ {
		segs = append(segs, table.Index(i))
	}
	store, err := traxtents.NewLFS(d, segs, 16) // 8 KB blocks
	if err != nil {
		log.Fatal(err)
	}

	// Random overwrites over a working set at ~70% utilization.
	rng := rand.New(rand.NewSource(2))
	working := int64(64 * 33 * 7 / 10)
	for i := 0; i < 40000; i++ {
		if err := store.Write(rng.Int63n(working)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("segments: %d (variable-sized; first three: %v %v %v)\n",
		len(store.Segments()), segs[0], segs[1], segs[2])
	fmt.Printf("live blocks: %d\n", len(store.LiveBlocks()))
	fmt.Printf("cleaner moved %d blocks; measured write cost %.2f\n",
		store.CleanWritten, store.MeasuredWriteCost())
	fmt.Printf("simulated time: %.1f s\n", store.Now()/1000)
}
