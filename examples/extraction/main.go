// Extraction example: compare the paper's two boundary-detection
// methods on the same disk — DIXtrac-style SCSI characterization
// (seconds, ~1 translation per 30 tracks) versus the general
// timing-based approach (the paper's took four hours of disk time).
package main

import (
	"fmt"
	"log"

	"traxtents"
)

func main() {
	m, err := traxtents.DiskModel("Quantum-Atlas10K")
	if err != nil {
		log.Fatal(err)
	}
	d, err := traxtents.NewDisk(m)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := traxtents.GroundTruthTable(d)
	if err != nil {
		log.Fatal(err)
	}

	tgt := traxtents.NewSCSITarget(d)
	res, err := traxtents.Characterize(tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DIXtrac:  %d tracks via %d translations; scheme %v, %d zones, %d defects; exact=%v\n",
		res.Table.NumTracks(), res.Translations, res.Scheme, len(res.Zones), len(res.Defects),
		equal(res.Table, truth))

	tgt.ResetCounters()
	fb, err := traxtents.CharacterizeFallback(tgt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fallback: %d tracks via %d translations (%.2f/track); exact=%v\n",
		fb.NumTracks(), tgt.TranslationCount(),
		float64(tgt.TranslationCount())/float64(fb.NumTracks()), equal(fb, truth))

	d2, err := traxtents.NewDisk(m)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := traxtents.ExtractGeneral(d2, traxtents.ExtractOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("general:  %d tracks via %d reads, %.0f simulated minutes; exact=%v\n",
		rep.Table.NumTracks(), rep.Reads, rep.SimulatedMs/60000, equal(rep.Table, truth))
}

func equal(a, b *traxtents.Table) bool {
	x, y := a.Boundaries(), b.Boundaries()
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}
