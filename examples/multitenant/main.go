// Multi-tenant volume example: one manager, two spindle shards, three
// tenants with different contracts. Placement is traxtent-granular (no
// tenant extent straddles a track boundary), "gold" carries a 4x
// fair-share weight, "bronze" is admission-limited to 40 IOPS with
// overflow rejected, and "shaped" defers its overflow to the token
// bucket's release time instead. One tenant's volume is then re-served
// through its Device view — the same interface every other layer of the
// library speaks.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"traxtents"
)

func main() {
	// Two simulated spindles become the manager's shards. The manager
	// itself does the sharding — each tenant volume's extents spread
	// across both spindles, whole traxtents at a time.
	m, err := traxtents.DiskModel("Quantum-Atlas10KII")
	if err != nil {
		log.Fatal(err)
	}
	var shards []traxtents.Device
	for i := 0; i < 2; i++ {
		d, err := traxtents.NewDisk(m, traxtents.WithSeed(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		shards = append(shards, d)
	}
	mgr, err := traxtents.NewVolumeManager(shards,
		traxtents.WithVolumeTier("fair"),
		traxtents.WithVolumeTierDepth(8),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Three tenants, 32 MB each, three different contracts.
	const size = 64 * 1024 // sectors
	if _, err := mgr.AddVolume("gold", size, traxtents.WithTenantWeight(4)); err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.AddVolume("bronze", size,
		traxtents.WithTenantLimit(traxtents.TenantLimit{IOPS: 40})); err != nil {
		log.Fatal(err)
	}
	if _, err := mgr.AddVolume("shaped", size,
		traxtents.WithTenantLimit(traxtents.TenantLimit{IOPS: 40, Defer: true})); err != nil {
		log.Fatal(err)
	}

	// An open load: every tenant offers ~80 req/s of whole-extent reads
	// for one second. "bronze" is over its limit, so about half its
	// requests bounce with ErrTenantRejected; "shaped" sends the same
	// overflow but absorbs it as queueing delay instead.
	rng := rand.New(rand.NewSource(42))
	tenants := mgr.Tenants()
	extents := make(map[string][]traxtents.VolumeExtent, len(tenants))
	for _, name := range tenants {
		v, err := mgr.Volume(name)
		if err != nil {
			log.Fatal(err)
		}
		extents[name] = v.ExtentTable()
	}
	at := 0.0
	for at < 1000 {
		name := tenants[rng.Intn(len(tenants))]
		exts := extents[name]
		k := rng.Intn(len(exts))
		var lbn int64 // volume-relative start of the chosen extent
		for _, e := range exts[:k] {
			lbn += e.Sectors
		}
		req := traxtents.Request{LBN: lbn, Sectors: int(exts[k].Sectors)}
		if err := mgr.Submit(name, at, req); err != nil && !errors.Is(err, traxtents.ErrTenantRejected) {
			log.Fatal(err)
		}
		at += rng.ExpFloat64() * 1000 / 240 // 3 tenants x 80 req/s
	}
	if err := mgr.Drain(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %8s %9s %9s %9s %9s %9s\n",
		"tenant", "served", "rejected", "deferred", "mean ms", "p99 ms", "max ms")
	for _, st := range mgr.Stats() {
		fmt.Printf("%8s %8d %9d %9d %9.2f %9.2f %9.2f\n",
			st.Tenant, st.Requests, st.Rejected, st.Deferred, st.MeanMs, st.P99Ms, st.MaxMs)
	}
	agg := mgr.Aggregate()
	fmt.Printf("%8s %8d %9d %9d %9.2f %9.2f %9.2f\n",
		"*", agg.Requests, agg.Rejected, agg.Deferred, agg.MeanMs, agg.P99Ms, agg.MaxMs)

	// A tenant's volume is also a Device: the view carries the volume's
	// own traxtent table (extent boundaries in volume-relative LBNs), so
	// extraction, caching, queueing, and the case studies run over it
	// unchanged.
	view, err := mgr.View("gold")
	if err != nil {
		log.Fatal(err)
	}
	table, err := traxtents.GroundTruthTable(view)
	if err != nil {
		log.Fatal(err)
	}
	res, err := view.Serve(mgr.Now(), traxtents.Request{LBN: 0, Sectors: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nview %q: %d sectors in %d aligned extents; a 64-sector read took %.2f ms\n",
		view.Name(), view.Capacity(), table.NumTracks(), res.Response())
}
