// Video server example: how many 4 Mb/s streams can one disk sustain
// with 99.99% deadlines, with and without track alignment — the paper's
// §5.4 case study against a 10-disk array.
package main

import (
	"fmt"
	"log"

	"traxtents"
)

func main() {
	srv, err := traxtents.NewVideoServer(traxtents.VideoConfig{
		Rounds: 300, // Monte-Carlo rounds per admission probe
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := srv.TrackSectors()
	fmt.Printf("%s\none track = %d KB; round time at one track per stream = %.0f ms\n\n",
		srv.Describe(), ts*512/1024, float64(ts*512)/(4e6/8/1000))

	aligned, err := srv.MaxStreamsSoft(ts, true, 90)
	if err != nil {
		log.Fatal(err)
	}
	unaligned, err := srv.MaxStreamsSoft(ts, false, 90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("soft real time:  %d aligned vs %d unaligned streams per disk (+%.0f%%)\n",
		aligned, unaligned, (float64(aligned)/float64(unaligned)-1)*100)
	fmt.Printf("whole array:     %d vs %d concurrent viewers\n",
		aligned*srv.Config().Disks, unaligned*srv.Config().Disks)

	hardA, effA, err := srv.HardRealTime(ts, true)
	if err != nil {
		log.Fatal(err)
	}
	hardU, effU, err := srv.HardRealTime(ts, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hard real time:  %d aligned (%.0f%% efficiency) vs %d unaligned (%.0f%%)\n",
		hardA, effA*100, hardU, effU*100)
}
