// Video server example: how many 4 Mb/s streams can one disk sustain
// with 99.99% deadlines, with and without track alignment — the paper's
// §5.4 case study against a 10-disk array — and the same server run
// over the composed host stack (cache → C-LOOK queue → disk) with a
// competing background small-I/O workload on the same spindle.
package main

import (
	"fmt"
	"log"

	"traxtents"
)

func main() {
	srv, err := traxtents.NewVideoServer(traxtents.VideoConfig{
		Rounds: 300, // Monte-Carlo rounds per admission probe
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := srv.TrackSectors()
	fmt.Printf("%s\none track = %d KB; round time at one track per stream = %.0f ms\n\n",
		srv.Describe(), ts*512/1024, float64(ts*512)/(4e6/8/1000))

	aligned, err := srv.MaxStreamsSoft(ts, true, 90)
	if err != nil {
		log.Fatal(err)
	}
	unaligned, err := srv.MaxStreamsSoft(ts, false, 90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("soft real time:  %d aligned vs %d unaligned streams per disk (+%.0f%%)\n",
		aligned, unaligned, (float64(aligned)/float64(unaligned)-1)*100)
	fmt.Printf("whole array:     %d vs %d concurrent viewers\n",
		aligned*srv.Config().Disks, unaligned*srv.Config().Disks)

	hardA, effA, err := srv.HardRealTime(ts, true)
	if err != nil {
		log.Fatal(err)
	}
	hardU, effU, err := srv.HardRealTime(ts, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hard real time:  %d aligned (%.0f%% efficiency) vs %d unaligned (%.0f%%)\n\n",
		hardA, effA*100, hardU, effU*100)

	// The same server over the composed host stack: popular content
	// bounded to a 16-track hot set, a 4 MB host cache warmed with it, a
	// C-LOOK depth-8 queue, and an FFS-style background load of 100
	// small reads per second competing for the spindle.
	stacked, err := traxtents.NewVideoServer(traxtents.VideoConfig{
		Rounds:       300,
		Seed:         11,
		HotSetTracks: 16,
		Stack:        traxtents.StackConfig{Depth: 8, Scheduler: "clook", CacheMB: 4},
		Background:   traxtents.VideoBackground{RatePerSec: 100},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mixed workload over the host stack (hot set 16 tracks, 4 MB cache, C-LOOK/8, 100 bg req/s):")
	for _, aligned := range []bool{true, false} {
		met, err := stacked.MeasureRounds(24, ts, aligned)
		if err != nil {
			log.Fatal(err)
		}
		name := "aligned"
		if !aligned {
			name = "unaligned"
		}
		fmt.Printf("  %-9s round q %7.1f ms, cache hits %4.1f%%, background mean %6.1f ms over %d reqs\n",
			name, met.RoundQMs, met.CacheHitRate*100, met.BgMeanMs, met.BgRequests)
	}
}
