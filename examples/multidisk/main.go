// Multi-disk and trace-replay example: the Device interface at work.
// A traxtent-striped array of four simulated disks serves full-stripe
// reads in parallel; a recorder captures the workload; and a trace
// device replays it with no simulator behind it — same timings, no
// mechanics.
package main

import (
	"fmt"
	"log"

	"traxtents"
)

func main() {
	m, err := traxtents.DiskModel("Quantum-Atlas10KII")
	if err != nil {
		log.Fatal(err)
	}

	// Four disks, striped in traxtent-matched units: array track j is
	// disk (j mod 4)'s track (j div 4), so a full-stripe read costs one
	// whole-track access per disk — in parallel.
	var children []traxtents.Device
	for i := 0; i < 4; i++ {
		d, err := traxtents.NewDisk(m, traxtents.WithSeed(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		children = append(children, d)
	}
	arr, err := traxtents.NewStripedDevice(children)
	if err != nil {
		log.Fatal(err)
	}

	// The array is a Device like any other: it has a traxtent table, and
	// the case studies run over it unchanged.
	table, err := traxtents.GroundTruthTable(arr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %d x %s, %d traxtent stripe units (mean %.0f sectors), %.1f GB\n",
		arr.Width(), m.Name, table.NumTracks(), table.MeanTrackLen(),
		float64(arr.Capacity())*512/1e9)

	// Record a burst of full-stripe reads (one whole stripe = the next
	// Width() stripe units) through a recorder.
	rec := traxtents.NewRecorder(arr)
	at := 0.0
	var total, totalKB float64
	const reads = 64
	stripeAt := func(i int) (int64, int) {
		j := (i * 113 * arr.Width()) % (table.NumTracks() - arr.Width())
		start := table.Index(j).Start
		end := table.Index(j + arr.Width() - 1).End()
		return start, int(end - start)
	}
	for i := 0; i < reads; i++ {
		lbn, sectors := stripeAt(i)
		res, err := rec.Serve(at, traxtents.Request{LBN: lbn, Sectors: sectors})
		if err != nil {
			log.Fatal(err)
		}
		total += res.Response()
		totalKB += float64(sectors) * 512 / 1024
		at = res.Done
	}
	fmt.Printf("recorded %d full-stripe reads (mean %.0f KB): mean %.2f ms\n",
		reads, totalKB/reads, total/reads)

	// Serialize the trace and replay it on a pure trace device.
	data, err := rec.Trace().Encode()
	if err != nil {
		log.Fatal(err)
	}
	tr, err := traxtents.DecodeTrace(data)
	if err != nil {
		log.Fatal(err)
	}
	player, err := traxtents.NewTraceDevice(tr, traxtents.StrictReplay())
	if err != nil {
		log.Fatal(err)
	}
	at, total = 0, 0
	for i := 0; i < reads; i++ {
		lbn, sectors := stripeAt(i)
		res, err := player.Serve(at, traxtents.Request{LBN: lbn, Sectors: sectors})
		if err != nil {
			log.Fatal(err)
		}
		total += res.Response()
		at = res.Done
	}
	fmt.Printf("replayed the %d-byte trace without the simulator: mean %.2f ms\n",
		len(data), total/reads)
}
