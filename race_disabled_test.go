//go:build !race

package traxtents_test

const raceEnabled = false
